"""Build and run experiments described by :class:`ExperimentConfig`."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..attacks import DfaHyperParameters, build_attack
from ..defenses import build_defense
from ..fl.dispatch_policy import DispatchPolicy
from ..fl.simulation import FederatedSimulation, SimulationResult
from ..fl.types import LocalTrainingConfig, RoundRecord
from ..metrics import attack_success_rate, defense_pass_rate, max_accuracy
from ..models import ClassifierFactory, default_architecture_for_dataset
from .config import ExperimentConfig

__all__ = ["ExperimentResult", "ExperimentRunner", "build_simulation", "run_experiment"]

_DFA_ATTACKS = {"dfa-r", "dfa-g", "dfa-hybrid", "real-data"}


def _policy_from_legacy(policy, executor, workers, caller: str):
    """Resolve the deprecated ``executor=``/``workers=`` kwargs to a policy.

    Returns ``policy`` untouched when neither legacy kwarg is set; otherwise
    warns once and converts them via
    :meth:`~repro.fl.dispatch_policy.DispatchPolicy.from_legacy`.
    """
    if executor is None and workers is None:
        return policy
    if policy is not None:
        raise ValueError(f"{caller}: pass either policy= or the deprecated executor=/workers=, not both")
    warnings.warn(
        f"{caller}: executor=/workers= are deprecated; pass policy= instead "
        "(e.g. policy='process:2' or DispatchPolicy.adaptive())",
        DeprecationWarning,
        stacklevel=3,
    )
    return DispatchPolicy.from_legacy(executor, workers)


@dataclass
class ExperimentResult:
    """Outcome of one experiment plus the paper's derived metrics."""

    config: ExperimentConfig
    records: List[RoundRecord]
    max_accuracy: float
    final_accuracy: float
    dpr: Optional[float]
    baseline_accuracy: Optional[float] = None
    asr: Optional[float] = None
    attack_synthesis_losses: List[List[float]] = field(default_factory=list)
    fault_stats: Dict[str, int] = field(default_factory=dict)
    """Nonzero :class:`~repro.fl.faults.FaultStats` counters of the run
    (empty for fault-free runs, keeping legacy artifacts comparable)."""

    @property
    def accuracies(self) -> List[float]:
        """Per-round global accuracy trace."""
        return [record.accuracy for record in self.records]


def _attack_kwargs_for(config: ExperimentConfig) -> Dict:
    """Assemble constructor kwargs for the configured attack."""
    kwargs = dict(config.attack_kwargs)
    if config.attack and config.attack.lower() in _DFA_ATTACKS and "hyper" not in kwargs:
        kwargs["hyper"] = DfaHyperParameters(
            num_synthetic=config.num_synthetic,
            synthesis_epochs=config.synthesis_epochs,
            synthesis_lr=config.synthesis_lr,
            train_synthesizer=config.train_synthesizer,
            use_regularization=config.use_regularization,
            regularization_weight=config.regularization_weight,
        )
    return kwargs


def build_simulation(
    config: ExperimentConfig,
    executor=None,
    workers: Optional[int] = None,
    task=None,
    policy=None,
    resilience=None,
) -> FederatedSimulation:
    """Construct the simulation (task, model factory, attack, defense) for a config.

    ``policy`` selects the dispatch backend for the simulation's hot paths
    (see :class:`~repro.fl.dispatch_policy.DispatchPolicy`); it accepts a
    policy object, a spec string (``"adaptive"``, ``"process:2"``) or a
    :class:`~repro.fl.executor.ClientExecutor` instance to pin.  When
    omitted, ``config.dispatch`` (a spec string) is used if set.  The model
    factory is a picklable :class:`~repro.models.ClassifierFactory`, so the
    ``"process"`` backend works out of the box.  ``executor``/``workers``
    are deprecated aliases for ``policy``.  ``task`` injects a pre-built
    dataset task for the config — the grid dispatch layer passes the
    grid-level shared publication (read-only views into one per-dataset shm
    segment) so a sweep's cells skip both regeneration and re-publication;
    it must match what ``load_dataset`` would produce for the config's
    dataset fields.  ``resilience`` is an optional
    :class:`~repro.fl.faults.ResilienceConfig` enabling the fault-tolerant
    round loop (retries, round deadline, optional fault injection); like
    ``dispatch``, it never enters the config's cache identity.
    """
    policy = _policy_from_legacy(policy, executor, workers, "build_simulation")
    if policy is None and config.dispatch:
        policy = DispatchPolicy.parse(config.dispatch)
    if task is None:
        from .dispatch import load_task_for  # local import: dispatch pulls in shm machinery

        task = load_task_for(config)
    architecture = config.architecture or default_architecture_for_dataset(config.dataset)
    model_factory = ClassifierFactory.for_task(task, architecture=architecture, seed=config.seed)

    attack = build_attack(config.attack, **_attack_kwargs_for(config))
    defense = build_defense(config.defense, **config.defense_kwargs)
    training_config = LocalTrainingConfig(
        local_epochs=config.local_epochs,
        batch_size=config.batch_size,
        learning_rate=config.learning_rate,
        momentum=config.momentum,
    )
    return FederatedSimulation(
        task=task,
        model_factory=model_factory,
        num_clients=config.num_clients,
        clients_per_round=config.clients_per_round,
        malicious_fraction=config.malicious_fraction,
        beta=config.beta,
        attack=attack,
        defense=defense,
        training_config=training_config,
        reference_fraction=config.reference_fraction,
        assumed_malicious_fraction=config.assumed_malicious_fraction,
        seed=config.seed,
        policy=policy,
        resilience=resilience,
    )


def run_experiment(
    config: ExperimentConfig,
    baseline_accuracy: Optional[float] = None,
    executor=None,
    workers: Optional[int] = None,
    task=None,
    policy=None,
    resilience=None,
    checkpoint_path=None,
    resume: bool = False,
) -> ExperimentResult:
    """Run one experiment and compute accuracy / ASR / DPR.

    ``baseline_accuracy`` is the clean accuracy ``acc`` used by Eq. 4; when
    omitted, ASR is left as ``None`` (use :class:`ExperimentRunner` to manage
    baselines automatically).  ``policy`` selects the dispatch backend of
    the underlying simulation (``executor``/``workers`` are deprecated
    aliases); ``task`` injects a pre-built dataset (see
    :func:`build_simulation`).  ``resilience`` enables the fault-tolerant
    round loop; ``checkpoint_path`` makes the run checkpoint after every
    round and ``resume`` restores a compatible checkpoint before running.
    """
    policy = _policy_from_legacy(policy, executor, workers, "run_experiment")
    with build_simulation(
        config, task=task, policy=policy, resilience=resilience
    ) as simulation:
        result = simulation.run(
            config.num_rounds, checkpoint_path=checkpoint_path, resume=resume
        )
    synthesis_losses: List[List[float]] = []
    if simulation.attack is not None:
        synthesis_losses = list(getattr(simulation.attack, "synthesis_loss_history", []))
    experiment = ExperimentResult(
        config=config,
        records=result.records,
        max_accuracy=result.max_accuracy,
        final_accuracy=result.final_accuracy,
        dpr=defense_pass_rate(result.records),
        baseline_accuracy=baseline_accuracy,
        attack_synthesis_losses=synthesis_losses,
        fault_stats=(
            simulation.fault_stats.to_dict() if simulation.fault_stats.any() else {}
        ),
    )
    if baseline_accuracy is not None and baseline_accuracy > 0:
        experiment.asr = attack_success_rate(baseline_accuracy, experiment.max_accuracy)
    return experiment


class ExperimentRunner:
    """Runs batches of experiments, caching clean baselines per dataset setup.

    Every attacked experiment needs the matching clean accuracy ``acc``
    (no attack, no defense) to compute ASR; since many experiments in a sweep
    share the same dataset/federation settings, the runner caches those
    baseline runs.
    """

    def __init__(
        self,
        executor=None,
        workers: Optional[int] = None,
        policy=None,
        resilience=None,
        checkpoint_dir=None,
        resume: bool = False,
    ) -> None:
        self._baseline_cache: Dict[Tuple, float] = {}
        self._result_cache: Dict[str, ExperimentResult] = {}
        self._policy = _policy_from_legacy(policy, executor, workers, "ExperimentRunner")
        self._resilience = resilience
        self._checkpoint_dir = checkpoint_dir
        self._resume = resume

    def _checkpoint_path(self, config: ExperimentConfig):
        """Content-addressed checkpoint path for one config, if enabled."""
        if self._checkpoint_dir is None:
            return None
        from pathlib import Path

        from .grid import config_hash  # local import: grid depends on this module

        return Path(self._checkpoint_dir) / f"{config_hash(config)}.ckpt.json"

    @staticmethod
    def _config_key(config: ExperimentConfig) -> str:
        return repr(sorted(config.to_dict().items(), key=lambda item: item[0]))

    def baseline_accuracy(self, config: ExperimentConfig) -> float:
        """Clean-run accuracy ``acc`` for the given configuration (cached)."""
        key = config.baseline_key()
        if key not in self._baseline_cache:
            clean = config.clean_variant()
            # Baselines keep the retry/deadline behaviour but never the
            # fault plan: chaos targets the attacked run, and a faulted
            # baseline would silently skew every ASR in the sweep.
            resilience = (
                None if self._resilience is None else self._resilience.without_plan()
            )
            result = run_experiment(clean, policy=self._policy, resilience=resilience)
            self._baseline_cache[key] = result.max_accuracy
        return self._baseline_cache[key]

    def run(self, config: ExperimentConfig, use_cache: bool = True) -> ExperimentResult:
        """Run one experiment with its ASR computed against the cached baseline.

        Identical configurations are only executed once per runner instance;
        benchmark sweeps that share scenarios (e.g. Table II and Fig. 4 reuse
        the same β = 0.5 runs) therefore do not repeat work.
        """
        key = self._config_key(config)
        if use_cache and key in self._result_cache:
            return self._result_cache[key]
        baseline = self.baseline_accuracy(config)
        result = run_experiment(
            config,
            baseline_accuracy=baseline,
            policy=self._policy,
            resilience=self._resilience,
            checkpoint_path=self._checkpoint_path(config),
            resume=self._resume,
        )
        if use_cache:
            self._result_cache[key] = result
        return result

    def run_many(
        self,
        configs: List[ExperimentConfig],
        workers: Optional[int] = None,
        policy=None,
    ) -> List[ExperimentResult]:
        """Run a list of experiments, optionally across worker processes.

        ``policy`` governs the batch-level (``"grid"`` site) dispatch: a
        fixed ``"process"`` policy or an adaptive policy whose cost model
        picks ``"process"`` for the batch routes it through
        :class:`~repro.experiments.grid.GridRunner` (scenario-level
        parallelism); anything else runs the batch serially through
        :meth:`run`.  ``workers`` is the deprecated spelling (``workers > 1``
        maps to a fixed process policy).  Results come back in input order
        and are merged into this runner's in-memory cache afterwards.
        """
        if workers is not None:
            if policy is not None:
                raise ValueError("run_many: pass either policy= or the deprecated workers=, not both")
            warnings.warn(
                "run_many: workers= is deprecated; pass policy= instead "
                "(e.g. policy='process:2')",
                DeprecationWarning,
                stacklevel=2,
            )
            policy = (
                DispatchPolicy.fixed("process", workers=workers)
                if workers > 1
                else DispatchPolicy.serial()
            )
        policy = DispatchPolicy.coerce(policy)
        decision = policy.decide("grid", items=len(configs), work=float(len(configs)))
        if decision.backend != "process" or (decision.workers or 1) <= 1:
            return [self.run(config) for config in configs]
        from .grid import GridRunner  # local import: grid depends on this module

        # Configs already run this session come from the in-memory cache;
        # only the rest are dispatched to the pool.
        pending = [
            (f"batch/{index}", config)
            for index, config in enumerate(configs)
            if self._config_key(config) not in self._result_cache
        ]
        executed = {
            label: result for label, result in GridRunner(policy=policy).run(pending)
        }
        results: List[ExperimentResult] = []
        for index, config in enumerate(configs):
            key = self._config_key(config)
            if key not in self._result_cache:
                result = executed[f"batch/{index}"]
                self._result_cache[key] = result
                if result.baseline_accuracy is not None:
                    self._baseline_cache.setdefault(
                        config.baseline_key(), result.baseline_accuracy
                    )
            results.append(self._result_cache[key])
        return results
