"""Scenario-grid runner: expand, cache and dispatch whole experiment sweeps.

The paper's evaluation is a grid — attack × defense × heterogeneity (β) ×
attacker-fraction × dataset × seed — and every cell is an independent
:class:`~repro.experiments.config.ExperimentConfig`.  This module turns such
a grid into labelled configs (:class:`GridSpec` / :func:`expand_grid`),
dispatches them across worker processes, and caches each finished cell on
disk keyed by a content hash of its configuration, so interrupted or
repeated sweeps only pay for cells they have not completed yet.

Cache layout
------------
``<cache_dir>/<config_hash>.json`` — one JSON artifact per experiment in the
:func:`repro.experiments.io.result_to_dict` format (including the clean
baselines, which get synthetic ``baseline/…`` labels).  The hash covers the
full config dict (sorted-key JSON, sha256), so it is stable across processes
and Python invocations — unlike ``hash()``, which is salted per process.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .config import ExperimentConfig
from .io import result_from_dict, result_to_dict
from .runner import ExperimentResult, run_experiment
from .scenarios import Scenario

__all__ = [
    "GridSpec",
    "GridStats",
    "GridRunner",
    "config_hash",
    "expand_grid",
    "run_grid",
]

PathLike = Union[str, Path]
ProgressFn = Callable[[str], None]


#: Bump when an algorithm change invalidates previously cached results —
#: the version is mixed into :func:`config_hash`, so old artifacts simply
#: stop matching (the cache is config-keyed, not code-keyed).
#: 2: float64 defense distance plane (Krum/Bulyan selection changes on
#: converged rounds), Bulyan median-closest coordinate rule, FoolsGold
#: pardoning.
CACHE_VERSION = 2


def config_hash(config: ExperimentConfig) -> str:
    """Deterministic content hash of a configuration.

    Stable across processes, interpreter restarts and platforms (pure
    function of the config's field values plus :data:`CACHE_VERSION`), so it
    can key on-disk caches.
    """
    payload = json.dumps(
        {"cache_version": CACHE_VERSION, **config.to_dict()}, sort_keys=True, default=repr
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


@dataclass
class GridSpec:
    """Axes of a scenario grid; the cross product defines the sweep."""

    datasets: Sequence[str] = ("fashion-mnist",)
    attacks: Sequence[Optional[str]] = ("dfa-r",)
    defenses: Sequence[str] = ("fedavg",)
    betas: Sequence[Optional[float]] = (0.5,)
    malicious_fractions: Sequence[float] = (0.2,)
    seeds: Sequence[int] = (0,)
    scale: Callable[..., ExperimentConfig] = None  # set in __post_init__
    overrides: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scale is None:
            from .presets import benchmark_scale

            self.scale = benchmark_scale

    def expand(self) -> List[Scenario]:
        """Expand the cross product into ``(label, config)`` scenarios."""
        return expand_grid(
            datasets=self.datasets,
            attacks=self.attacks,
            defenses=self.defenses,
            betas=self.betas,
            malicious_fractions=self.malicious_fractions,
            seeds=self.seeds,
            scale=self.scale,
            **self.overrides,
        )

    @property
    def size(self) -> int:
        """Number of scenarios the grid expands to."""
        return (
            len(self.datasets)
            * len(self.attacks)
            * len(self.defenses)
            * len(self.betas)
            * len(self.malicious_fractions)
            * len(self.seeds)
        )


def expand_grid(
    datasets: Sequence[str] = ("fashion-mnist",),
    attacks: Sequence[Optional[str]] = ("dfa-r",),
    defenses: Sequence[str] = ("fedavg",),
    betas: Sequence[Optional[float]] = (0.5,),
    malicious_fractions: Sequence[float] = (0.2,),
    seeds: Sequence[int] = (0,),
    scale: Optional[Callable[..., ExperimentConfig]] = None,
    **overrides,
) -> List[Scenario]:
    """Cross every axis and return labelled configs, outermost axis first.

    ``scale`` is a preset factory (``smoke_scale`` / ``benchmark_scale`` /
    ``paper_scale``); extra keyword arguments are forwarded to it, so e.g.
    ``num_rounds=3`` shrinks every cell of the grid uniformly.
    """
    if scale is None:
        from .presets import benchmark_scale as scale

    grid: List[Scenario] = []
    for dataset in datasets:
        for defense in defenses:
            for attack in attacks:
                for beta in betas:
                    for fraction in malicious_fractions:
                        for seed in seeds:
                            config = scale(
                                dataset,
                                attack=attack,
                                defense=defense,
                                beta=beta,
                                malicious_fraction=fraction,
                                seed=seed,
                                **overrides,
                            )
                            label = "/".join(
                                [
                                    dataset,
                                    defense,
                                    str(attack or "clean"),
                                    "iid" if beta is None else f"beta={beta}",
                                    f"attackers={fraction:.0%}",
                                    f"seed={seed}",
                                ]
                            )
                            grid.append((label, config))
    return grid


@dataclass
class GridStats:
    """Bookkeeping of one :meth:`GridRunner.run` call."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    baselines_executed: int = 0
    baseline_cache_hits: int = 0
    wall_seconds: float = 0.0


def _run_cell(label: str, config: ExperimentConfig, baseline_accuracy: Optional[float]):
    """Worker entry point: must stay module-level so it pickles."""
    return label, run_experiment(config, baseline_accuracy=baseline_accuracy)


class GridRunner:
    """Run a scenario grid with worker processes and per-scenario disk cache.

    Parameters
    ----------
    workers:
        Process count for scenario-level parallelism; ``1`` runs everything
        in the calling process (no pool, no pickling requirements beyond the
        cache files).
    cache_dir:
        Directory of per-scenario JSON artifacts; ``None`` disables caching.
        Artifacts are keyed by :func:`config_hash`, so re-running a grid after
        an interruption (or with new cells added) only executes the missing
        cells.
    progress:
        Callable receiving one human-readable line per completed cell
        (``print`` for streaming output); ``None`` silences progress.

    Two phases per run: first the distinct clean baselines (needed for the
    ASR of Eq. 4, shared by every cell with the same federation settings),
    then the grid cells themselves — both phases fan out across the pool and
    both consult the cache before executing anything.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[PathLike] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.progress = progress
        self.last_stats = GridStats()

    # ------------------------------------------------------------------
    # Cache helpers
    # ------------------------------------------------------------------
    def _cache_path(self, config: ExperimentConfig) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{config_hash(config)}.json"

    def _cache_load(self, config: ExperimentConfig) -> Optional[Tuple[str, ExperimentResult]]:
        path = self._cache_path(config)
        if path is None or not path.exists():
            return None
        try:
            return result_from_dict(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError):
            # Corrupt or stale artifact: fall through to re-execution.
            return None

    def _cache_store(self, label: str, result: ExperimentResult) -> None:
        path = self._cache_path(result.config)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(result_to_dict(label, result)))
        tmp.replace(path)

    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_batch(
        self, jobs: List[Tuple[str, ExperimentConfig, Optional[float]]], phase: str
    ) -> Dict[str, ExperimentResult]:
        """Run (label, config, baseline) jobs, streaming completions."""
        results: Dict[str, ExperimentResult] = {}
        total = len(jobs)
        if not jobs:
            return results
        started = time.perf_counter()

        def note(label: str, result: ExperimentResult, index: int) -> None:
            asr = "  n/a" if result.asr is None else f"{result.asr:5.1f}%"
            self._emit(
                f"[{phase} {index}/{total}] {label}  "
                f"acc_m={100.0 * result.max_accuracy:5.1f}%  ASR={asr}  "
                f"({time.perf_counter() - started:.1f}s elapsed)"
            )

        if self.workers == 1:
            for index, (label, config, baseline) in enumerate(jobs, start=1):
                label, result = _run_cell(label, config, baseline)
                self._cache_store(label, result)
                results[label] = result
                note(label, result, index)
            return results

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            pending = {
                pool.submit(_run_cell, label, config, baseline)
                for label, config, baseline in jobs
            }
            done_count = 0
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    label, result = future.result()
                    done_count += 1
                    self._cache_store(label, result)
                    results[label] = result
                    note(label, result, done_count)
        return results

    def run(self, scenario_list: Sequence[Scenario]) -> List[Tuple[str, ExperimentResult]]:
        """Run every scenario (cache-aware) and return ``(label, result)`` pairs
        in input order.  Per-run statistics land in :attr:`last_stats`."""
        labels = [label for label, _ in scenario_list]
        if len(set(labels)) != len(labels):
            duplicates = sorted({label for label in labels if labels.count(label) > 1})
            raise ValueError(f"duplicate scenario labels: {duplicates}")

        started = time.perf_counter()
        stats = GridStats(total=len(scenario_list))

        cached: Dict[str, ExperimentResult] = {}
        pending: List[Scenario] = []
        for label, config in scenario_list:
            hit = self._cache_load(config)
            if hit is not None:
                cached[label] = hit[1]
                stats.cache_hits += 1
                self._emit(f"[cache] {label}")
            else:
                pending.append((label, config))

        # Phase 1 — distinct clean baselines for the pending cells.
        baselines: Dict[Tuple, float] = {}
        baseline_jobs: List[Tuple[str, ExperimentConfig, Optional[float]]] = []
        for _, config in pending:
            key = config.baseline_key()
            if key in baselines:
                continue
            clean = config.clean_variant()
            hit = self._cache_load(clean)
            if hit is not None:
                baselines[key] = hit[1].max_accuracy
                stats.baseline_cache_hits += 1
            else:
                baselines[key] = float("nan")  # placeholder until phase 1 ends
                baseline_jobs.append((f"baseline/{config_hash(clean)}", clean, None))
        baseline_results = self._execute_batch(baseline_jobs, phase="baseline")
        stats.baselines_executed = len(baseline_results)
        for label, result in baseline_results.items():
            baselines[result.config.baseline_key()] = result.max_accuracy

        # Phase 2 — the grid cells themselves.
        jobs = [
            (label, config, baselines[config.baseline_key()]) for label, config in pending
        ]
        executed = self._execute_batch(jobs, phase="grid")
        stats.executed = len(executed)

        stats.wall_seconds = time.perf_counter() - started
        self.last_stats = stats

        ordered: List[Tuple[str, ExperimentResult]] = []
        for label, _ in scenario_list:
            ordered.append((label, cached[label] if label in cached else executed[label]))
        return ordered


def run_grid(
    scenario_list: Sequence[Scenario],
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    progress: Optional[ProgressFn] = None,
) -> List[Tuple[str, ExperimentResult]]:
    """One-shot convenience wrapper around :class:`GridRunner`."""
    return GridRunner(workers=workers, cache_dir=cache_dir, progress=progress).run(
        scenario_list
    )
