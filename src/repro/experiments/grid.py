"""Scenario-grid runner: expand, cache and dispatch whole experiment sweeps.

The paper's evaluation is a grid — attack × defense × heterogeneity (β) ×
attacker-fraction × dataset × seed — and every cell is an independent
:class:`~repro.experiments.config.ExperimentConfig`.  This module turns such
a grid into labelled configs (:class:`GridSpec` / :func:`expand_grid`),
dispatches them across worker processes, and caches each finished cell on
disk keyed by a content hash of its configuration, so interrupted or
repeated sweeps only pay for cells they have not completed yet.

Cache layout
------------
``<cache_dir>/<config_hash>.json`` — one JSON artifact per experiment in the
:func:`repro.experiments.io.result_to_dict` format (including the clean
baselines, which get synthetic ``baseline/…`` labels).  The hash covers the
full config dict (sorted-key JSON, sha256), so it is stable across processes
and Python invocations — unlike ``hash()``, which is salted per process.

Multi-host dispatch
-------------------
Because the cache is content-addressed, *N* runners pointed at one shared
``cache_dir`` can split a grid without any coordinator: pass ``claim_ttl``
(CLI ``--claim-ttl``) and every runner claims pending cells through atomic
``<hash>.claim`` lease files before executing them — see
:mod:`repro.experiments.dispatch` for the lease protocol (heartbeats, stale
takeover) and the deterministic ``--shard i/n`` static-partition fallback.
Cells another live runner holds are skipped (their results come out of the
cache on the next pass); stale leases are stolen.  On each host, every
distinct dataset of the sweep is published once at grid level
(:class:`~repro.experiments.dispatch.DatasetBroker`) and worker processes
attach read-only shared-memory views instead of regenerating it per cell.
"""

from __future__ import annotations

import hashlib
import json
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..fl.dispatch_policy import DispatchPolicy
from ..fl.faults import FaultStats, ResilienceConfig
from .config import ExperimentConfig
from .dispatch import (
    ClaimLedger,
    DatasetBroker,
    default_runner_id,
    initialize_worker,
    parse_shard,
    resolve_task,
    shard_of,
)
from .io import (
    atomic_write_json,
    quarantine_count,
    read_json,
    result_from_dict,
    result_to_dict,
)
from .runner import ExperimentResult, run_experiment
from .scenarios import Scenario

__all__ = [
    "GridSpec",
    "GridStats",
    "GridRunner",
    "GridBaselineError",
    "GridExecutionError",
    "config_hash",
    "expand_grid",
    "run_grid",
]

PathLike = Union[str, Path]
ProgressFn = Callable[[str], None]


#: Bump when an algorithm change invalidates previously cached results —
#: the version is mixed into :func:`config_hash`, so old artifacts simply
#: stop matching (the cache is config-keyed, not code-keyed).
#: 2: float64 defense distance plane (Krum/Bulyan selection changes on
#: converged rounds), Bulyan median-closest coordinate rule, FoolsGold
#: pardoning.
CACHE_VERSION = 2


def config_hash(config: ExperimentConfig) -> str:
    """Deterministic content hash of a configuration.

    Stable across processes, interpreter restarts and platforms (pure
    function of the config's field values plus :data:`CACHE_VERSION`), so it
    can key on-disk caches.
    """
    payload = json.dumps(
        {"cache_version": CACHE_VERSION, **config.to_dict()}, sort_keys=True, default=repr
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


@dataclass
class GridSpec:
    """Axes of a scenario grid; the cross product defines the sweep."""

    datasets: Sequence[str] = ("fashion-mnist",)
    attacks: Sequence[Optional[str]] = ("dfa-r",)
    defenses: Sequence[str] = ("fedavg",)
    betas: Sequence[Optional[float]] = (0.5,)
    malicious_fractions: Sequence[float] = (0.2,)
    seeds: Sequence[int] = (0,)
    scale: Callable[..., ExperimentConfig] = None  # set in __post_init__
    overrides: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scale is None:
            from .presets import benchmark_scale

            self.scale = benchmark_scale

    def expand(self) -> List[Scenario]:
        """Expand the cross product into ``(label, config)`` scenarios."""
        return expand_grid(
            datasets=self.datasets,
            attacks=self.attacks,
            defenses=self.defenses,
            betas=self.betas,
            malicious_fractions=self.malicious_fractions,
            seeds=self.seeds,
            scale=self.scale,
            **self.overrides,
        )

    @property
    def size(self) -> int:
        """Number of scenarios the grid expands to."""
        return (
            len(self.datasets)
            * len(self.attacks)
            * len(self.defenses)
            * len(self.betas)
            * len(self.malicious_fractions)
            * len(self.seeds)
        )


def expand_grid(
    datasets: Sequence[str] = ("fashion-mnist",),
    attacks: Sequence[Optional[str]] = ("dfa-r",),
    defenses: Sequence[str] = ("fedavg",),
    betas: Sequence[Optional[float]] = (0.5,),
    malicious_fractions: Sequence[float] = (0.2,),
    seeds: Sequence[int] = (0,),
    scale: Optional[Callable[..., ExperimentConfig]] = None,
    **overrides,
) -> List[Scenario]:
    """Cross every axis and return labelled configs, outermost axis first.

    ``scale`` is a preset factory (``smoke_scale`` / ``benchmark_scale`` /
    ``paper_scale``); extra keyword arguments are forwarded to it, so e.g.
    ``num_rounds=3`` shrinks every cell of the grid uniformly.
    """
    if scale is None:
        from .presets import benchmark_scale as scale

    grid: List[Scenario] = []
    for dataset in datasets:
        for defense in defenses:
            for attack in attacks:
                for beta in betas:
                    for fraction in malicious_fractions:
                        for seed in seeds:
                            config = scale(
                                dataset,
                                attack=attack,
                                defense=defense,
                                beta=beta,
                                malicious_fraction=fraction,
                                seed=seed,
                                **overrides,
                            )
                            label = "/".join(
                                [
                                    dataset,
                                    defense,
                                    str(attack or "clean"),
                                    "iid" if beta is None else f"beta={beta}",
                                    f"attackers={fraction:.0%}",
                                    f"seed={seed}",
                                ]
                            )
                            grid.append((label, config))
    return grid


@dataclass
class GridStats:
    """Bookkeeping of one :meth:`GridRunner.run` call."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    baselines_executed: int = 0
    baseline_cache_hits: int = 0
    baselines_awaited: int = 0
    claims_acquired: int = 0
    claims_stolen: int = 0
    claims_expired: int = 0
    claims_lost: int = 0
    cells_skipped_claimed: int = 0
    cells_skipped_shard: int = 0
    dataset_publications: int = 0
    wall_seconds: float = 0.0
    dispatch_decisions: List[Dict[str, Any]] = field(default_factory=list)
    """Per-call-site decision trace of the runner's dispatch policy (what
    ``--stats-json`` surfaces)."""
    fault_stats: Dict[str, int] = field(default_factory=dict)
    """Aggregated :class:`~repro.fl.faults.FaultStats` counters across every
    cell *executed* this run (cache hits do not re-count their stored
    stats), plus artifacts corrupted/quarantined at grid level.  Empty when
    nothing fired."""


class GridExecutionError(RuntimeError):
    """One or more grid cells failed; every sibling cell still completed (and
    was cached).  ``failures`` maps cell labels to error strings and
    ``results`` carries the completed ``(label, result)`` pairs in input
    order, so callers can salvage partial sweeps."""

    def __init__(
        self,
        failures: Dict[str, str],
        results: Sequence[Tuple[str, ExperimentResult]],
        message: Optional[str] = None,
    ) -> None:
        self.failures = dict(failures)
        self.results = list(results)
        if message is None:
            lines = [f"{label}: {error}" for label, error in sorted(failures.items())]
            message = (
                f"{len(failures)} grid cell(s) failed "
                f"({len(results)} completed):\n  " + "\n  ".join(lines)
            )
        super().__init__(message)


class GridBaselineError(GridExecutionError):
    """Clean-baseline placeholders survived phase 1 of some batch (failed
    baseline job or a ``baseline_key`` round-trip mismatch).  The dependent
    cells cannot compute a meaningful ASR, so they are *skipped* — never run
    with a NaN baseline — and named in :attr:`labels`; cells depending on
    healthy baselines still execute, and the completed results ride along in
    :attr:`results` like any :class:`GridExecutionError`."""

    _MARKER = "clean baseline missing after phase 1"

    def __init__(
        self,
        labels: Sequence[str],
        failures: Dict[str, str],
        results: Sequence[Tuple[str, ExperimentResult]],
    ) -> None:
        self.labels = sorted(labels)
        super().__init__(
            failures,
            results,
            message=(
                "clean baselines missing after phase 1 for cells: "
                + ", ".join(self.labels)
            ),
        )


def _run_cell(
    label: str,
    config: ExperimentConfig,
    baseline_accuracy: Optional[float],
    resilience: Optional[ResilienceConfig] = None,
    checkpoint_path: Optional[PathLike] = None,
    resume: bool = False,
):
    """Worker entry point: must stay module-level so it pickles."""
    task = resolve_task(config)
    return label, run_experiment(
        config,
        baseline_accuracy=baseline_accuracy,
        task=task,
        resilience=resilience,
        checkpoint_path=checkpoint_path,
        resume=resume,
    )


class GridRunner:
    """Run a scenario grid with worker processes and per-scenario disk cache.

    Parameters
    ----------
    policy:
        A :class:`~repro.fl.dispatch_policy.DispatchPolicy` (or spec string
        such as ``"process:4"`` / ``"adaptive"``) governing the batch-level
        ``"grid"`` dispatch site: before executing pending cells the runner
        asks the policy whether to fan them out across worker processes and
        with how many workers; a serial decision runs everything in the
        calling process (no pool, no pickling requirements beyond the cache
        files).
    workers:
        Deprecated alias: process count for scenario-level parallelism;
        ``workers > 1`` maps to a fixed ``"process"`` policy and ``1`` to
        the serial policy.
    cache_dir:
        Directory of per-scenario JSON artifacts; ``None`` disables caching.
        Artifacts are keyed by :func:`config_hash`, so re-running a grid after
        an interruption (or with new cells added) only executes the missing
        cells.
    progress:
        Callable receiving one human-readable line per completed cell
        (``print`` for streaming output); ``None`` silences progress.
    runner_id:
        This runner's identity in lease files (defaults to a unique
        host-pid-nonce string).
    claim_ttl:
        Enable cooperative multi-runner dispatch: before executing a pending
        cell, atomically create ``<cache_dir>/<hash>.claim``; skip cells
        whose lease a live peer holds; steal leases whose heartbeat is older
        than this many seconds.  Requires ``cache_dir``.  ``None`` (default)
        disables claiming — single-runner behaviour is unchanged.
    shard:
        ``"i/n"`` (or ``(i, n)``) static partition: only cells whose config
        hash maps to shard ``i`` of ``n`` are considered at all; the rest are
        counted in :attr:`GridStats.cells_skipped_shard` and omitted from the
        returned results.  Composable with ``claim_ttl``.
    share_datasets:
        Publish every distinct dataset of the sweep once at grid level (a
        shared-memory store for process workers, an in-process memo
        otherwise) instead of regenerating it per cell.  On by default.
    resilience:
        Optional :class:`~repro.fl.faults.ResilienceConfig` forwarded to
        every cell's simulation (fault-tolerant round loop; the embedded
        fault plan is narrowed per cell label via
        :meth:`~repro.fl.faults.ResilienceConfig.for_cell`, and baselines
        run with the plan stripped so chaos never skews ASR references).
        Plans may also carry ``corrupt-artifact`` events, which the runner
        applies to the matching cell's freshly written cache artifact —
        exercising the torn-artifact quarantine path end to end.  With a
        ``cache_dir``, per-cell round checkpoints land next to the cache as
        ``<hash>.ckpt.json`` and are deleted once the cell's artifact is
        stored.
    resume:
        Resume cells from their round checkpoints when present (see
        ``resilience``); finished cells still come from the cache as usual.
    wait_for_peers:
        Under ``claim_ttl``: when every cell this runner could claim is done
        but peers still hold leases on the rest, keep polling — their
        artifacts land as cache hits, and leases that go stale are stolen —
        so the returned results cover the *whole* grid (minus shard skips)
        as long as at least one runner survives.  ``False`` exits instead,
        counting the peer-held cells in
        :attr:`GridStats.cells_skipped_claimed` and omitting them from the
        returned pairs ("do what I can and leave").

    Two phases per batch of cells: first the distinct clean baselines
    (needed for the ASR of Eq. 4, shared by every cell with the same
    federation settings), then the cells themselves — both fan out across
    one pool reused for the whole run and both consult the cache before
    executing anything.  Under ``claim_ttl``, cells are claimed a batch
    (~2×``workers``) at a time rather than all upfront, so concurrent
    runners interleave through the grid instead of the first arrival
    claiming everything; a baseline another runner is currently computing
    is *awaited* (its artifact is polled, with stale-lease takeover if the
    peer dies) rather than duplicated.

    Failure semantics: a cell whose worker raises no longer aborts the sweep
    — the error is recorded against the cell's label, every sibling keeps
    streaming (and caching), and the run ends by raising
    :class:`GridExecutionError` carrying the failure map plus the completed
    results.  A cell whose clean baseline could not be produced is skipped
    (NaN never reaches an ASR) and the run ends with
    :class:`GridBaselineError` — a :class:`GridExecutionError` subclass —
    naming those cells; cells with healthy baselines still execute.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[PathLike] = None,
        progress: Optional[ProgressFn] = None,
        runner_id: Optional[str] = None,
        claim_ttl: Optional[float] = None,
        shard: Optional[Union[str, Tuple[int, int]]] = None,
        share_datasets: bool = True,
        wait_for_peers: bool = True,
        policy=None,
        resilience: Optional[ResilienceConfig] = None,
        resume: bool = False,
    ) -> None:
        if workers is not None:
            if workers < 1:
                raise ValueError("workers must be at least 1")
            if policy is not None:
                raise ValueError(
                    "GridRunner: pass either policy= or the deprecated workers=, not both"
                )
            warnings.warn(
                "GridRunner: workers= is deprecated; pass policy= instead "
                "(e.g. policy='process:4' or DispatchPolicy.adaptive())",
                DeprecationWarning,
                stacklevel=2,
            )
            policy = (
                DispatchPolicy.fixed("process", workers=workers)
                if workers > 1
                else DispatchPolicy.serial()
            )
        if claim_ttl is not None and cache_dir is None:
            raise ValueError("claim leases need a cache_dir to live in")
        self.dispatch = DispatchPolicy.coerce(policy)
        self.workers = 1
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.progress = progress
        self.runner_id = runner_id or default_runner_id()
        self.claim_ttl = claim_ttl
        self.shard = parse_shard(shard) if isinstance(shard, str) else shard
        if self.shard is not None:
            parse_shard(f"{self.shard[0]}/{self.shard[1]}")  # validate tuples too
        self.share_datasets = share_datasets
        self.wait_for_peers = wait_for_peers
        self.resilience = resilience
        self.resume = resume
        self.last_stats = GridStats()
        self.last_failures: Dict[str, str] = {}
        self._broker: Optional[DatasetBroker] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._run_fault_stats = FaultStats()
        self._artifact_faults_fired: set = set()

    # ------------------------------------------------------------------
    # Cache helpers
    # ------------------------------------------------------------------
    def _cache_path(self, config: ExperimentConfig) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{config_hash(config)}.json"

    def _cache_load(self, config: ExperimentConfig) -> Optional[Tuple[str, ExperimentResult]]:
        path = self._cache_path(config)
        if path is None:
            return None
        data = read_json(path)
        if data is None:
            return None
        try:
            return result_from_dict(data)
        except (ValueError, KeyError, TypeError):
            # Corrupt or stale artifact: fall through to re-execution.
            return None

    def _cache_store(self, label: str, result: ExperimentResult) -> None:
        path = self._cache_path(result.config)
        if path is None:
            return
        atomic_write_json(path, result_to_dict(label, result))

    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _checkpoint_path(self, config: ExperimentConfig) -> Optional[Path]:
        """Round-checkpoint path for one cell, when checkpointing is on."""
        if self.cache_dir is None:
            return None
        if self.resilience is None and not self.resume:
            return None
        return self.cache_dir / f"{config_hash(config)}.ckpt.json"

    def _cell_resilience(self, label: str) -> Optional[ResilienceConfig]:
        """The per-cell resilience config: plan narrowed to the cell's label,
        and stripped entirely for clean baselines (chaos must never skew the
        ASR reference)."""
        if self.resilience is None:
            return None
        if label.startswith("baseline/"):
            return self.resilience.without_plan()
        return self.resilience.for_cell(label)

    def _maybe_corrupt_artifact(self, label: str, config: ExperimentConfig) -> None:
        """Apply planned ``corrupt-artifact`` events to a freshly stored cell.

        Truncates the artifact mid-file (fire-once per event), simulating a
        torn write from a crashed peer on a non-atomic filesystem; the next
        reader quarantines it and re-executes the cell.
        """
        if self.resilience is None or self.resilience.fault_plan is None:
            return
        path = self._cache_path(config)
        if path is None:
            return
        for event in self.resilience.fault_plan.for_cell(label).artifact_events():
            key = (event.cell, event.round, event.slot)
            if key in self._artifact_faults_fired:
                continue
            self._artifact_faults_fired.add(key)
            try:
                data = path.read_bytes()
                path.write_bytes(data[: max(1, len(data) // 2)])
            except OSError:  # pragma: no cover - artifact raced away
                continue
            self._run_fault_stats.artifacts_corrupted += 1
            self._emit(f"[chaos] corrupted cache artifact of {label}")

    def _finish_cell(
        self,
        label: str,
        config: ExperimentConfig,
        result: ExperimentResult,
        ledger: Optional[ClaimLedger],
    ) -> None:
        self._cache_store(label, result)
        self._run_fault_stats.merge(result.fault_stats)
        self._maybe_corrupt_artifact(label, config)
        checkpoint = self._checkpoint_path(config)
        if checkpoint is not None:
            # The cell's artifact is durable; its round checkpoint is scrap.
            try:
                checkpoint.unlink()
            except OSError:
                pass
        if ledger is not None:
            # The artifact is on disk, so peers hit the cache from here on;
            # releasing keeps a finished sweep's directory free of leases.
            ledger.release(config_hash(config))

    def _fail_cell(
        self,
        label: str,
        config: ExperimentConfig,
        error: Union[BaseException, str],
        failures: Dict[str, str],
        ledger: Optional[ClaimLedger],
    ) -> None:
        if isinstance(error, BaseException):
            error = f"{type(error).__name__}: {error}"
        failures[label] = error
        self._emit(f"[failed] {label}: {failures[label]}")
        if ledger is not None:
            # Give the lease back so a peer (or a re-run) can retry the cell.
            ledger.release(config_hash(config))

    def _execute_batch(
        self,
        jobs: List[Tuple[str, ExperimentConfig, Optional[float]]],
        phase: str,
        ledger: Optional[ClaimLedger] = None,
    ) -> Tuple[Dict[str, ExperimentResult], Dict[str, str]]:
        """Run (label, config, baseline) jobs, streaming completions.

        Worker exceptions never abandon the batch: each failure is recorded
        against its label and every other in-flight cell still completes,
        caches and streams.  Held claim leases are heartbeat-refreshed while
        the batch runs.
        """
        results: Dict[str, ExperimentResult] = {}
        failures: Dict[str, str] = {}
        total = len(jobs)
        if not jobs:
            return results, failures
        started = time.perf_counter()

        def note(label: str, result: ExperimentResult, index: int) -> None:
            asr = "  n/a" if result.asr is None else f"{result.asr:5.1f}%"
            self._emit(
                f"[{phase} {index}/{total}] {label}  "
                f"acc_m={100.0 * result.max_accuracy:5.1f}%  ASR={asr}  "
                f"({time.perf_counter() - started:.1f}s elapsed)"
            )

        if self.workers == 1:
            for index, (label, config, baseline) in enumerate(jobs, start=1):
                if ledger is not None:
                    ledger.refresh()
                try:
                    label, result = _run_cell(
                        label,
                        config,
                        baseline,
                        resilience=self._cell_resilience(label),
                        checkpoint_path=self._checkpoint_path(config),
                        resume=self.resume,
                    )
                except Exception as error:
                    self._fail_cell(label, config, error, failures, ledger)
                    continue
                self._finish_cell(label, config, result, ledger)
                results[label] = result
                note(label, result, index)
            return results, failures

        heartbeat = ledger.heartbeat_interval if ledger is not None else None
        pending = self._submit_jobs(jobs)
        done_count = 0
        pool_broke = False
        while pending:
            done, _ = wait(pending, timeout=heartbeat, return_when=FIRST_COMPLETED)
            if ledger is not None:
                ledger.refresh()
            for future in done:
                label, config = pending.pop(future)
                done_count += 1
                try:
                    label, result = future.result()
                except Exception as error:
                    pool_broke = pool_broke or isinstance(error, BrokenProcessPool)
                    self._fail_cell(label, config, error, failures, ledger)
                    continue
                self._finish_cell(label, config, result, ledger)
                results[label] = result
                note(label, result, done_count)
        if pool_broke:
            # A dead worker poisons the whole executor; dispose of it so the
            # next batch gets a healthy pool instead of an instant
            # BrokenProcessPool on submit.
            self._reset_pool()
        return results, failures

    def _submit_jobs(self, jobs):
        """Submit a batch to the run-level pool, replacing a broken pool once.

        A worker that died idle between batches only surfaces when the pool
        is next used; one retry on a fresh pool covers that without masking
        a pool that cannot be brought up at all.
        """
        for attempt in (0, 1):
            pool = self._ensure_pool()
            try:
                return {
                    pool.submit(
                        _run_cell,
                        label,
                        config,
                        baseline,
                        resilience=self._cell_resilience(label),
                        checkpoint_path=self._checkpoint_path(config),
                        resume=self.resume,
                    ): (label, config)
                    for label, config, baseline in jobs
                }
            except BrokenProcessPool:
                self._reset_pool()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _reset_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The run-level worker pool, created on first use.

        One pool serves every batch of both phases, so incremental claiming
        (which executes many small batches) pays the process start-up cost
        once; the initializer installs the grid-level dataset publications
        in every worker.
        """
        if self._pool is None:
            payload = self._broker.worker_payload() if self._broker is not None else {}
            pool_kwargs: Dict[str, Any] = {"max_workers": self.workers}
            if payload:
                pool_kwargs.update(initializer=initialize_worker, initargs=(payload,))
            self._pool = ProcessPoolExecutor(**pool_kwargs)
        return self._pool

    def _claim_batch(
        self,
        remaining: List[Scenario],
        batch_size: int,
        ledger: Optional[ClaimLedger],
        cached: Dict[str, ExperimentResult],
        stats: GridStats,
    ) -> Tuple[List[Scenario], List[Scenario], bool]:
        """Scan ``remaining`` and claim up to ``batch_size`` cells to run.

        Re-probes the cache per cell (a peer may have finished it since the
        last pass — those land in ``cached``) and, under a ledger, claims
        before taking; cells a live peer holds stay in the returned
        ``still``-remaining list for a later pass.  Returns
        ``(batch, still, progressed)`` where ``progressed`` says whether any
        cell was resolved from the cache this pass.
        """
        batch: List[Scenario] = []
        still: List[Scenario] = []
        progressed = False
        for index, (label, config) in enumerate(remaining):
            if len(batch) >= batch_size:
                still.extend(remaining[index:])
                break
            chash = config_hash(config)
            hit = self._cache_load(config)
            if hit is None and ledger is not None:
                if not ledger.try_claim(chash):
                    still.append((label, config))
                    continue
                # A peer may have stored + released between our cache probe
                # and the claim; re-check before executing.
                hit = self._cache_load(config)
                if hit is not None:
                    ledger.release(chash)
            if hit is not None:
                cached[label] = hit[1]
                stats.cache_hits += 1
                progressed = True
                self._emit(f"[cache] {label}")
            else:
                batch.append((label, config))
        return batch, still, progressed

    def _run_batch(
        self,
        batch: List[Scenario],
        baselines: Dict[Tuple, float],
        ledger: Optional[ClaimLedger],
        stats: GridStats,
        failures: Dict[str, str],
        executed: Dict[str, ExperimentResult],
    ) -> None:
        """Run one claimed batch: its missing clean baselines, then the cells.

        ``baselines`` accumulates across batches, so a federation setting's
        clean run executes at most once per runner (and, under a ledger, at
        most once per *grid* — peers' in-flight baselines are awaited, not
        duplicated).  Cells whose baseline placeholder survives phase 1
        (failed baseline job, ``baseline_key`` round-trip mismatch) are
        *skipped* and recorded as failures — NaN never reaches a dependent
        cell's ASR — while cells with healthy baselines still run.
        """
        dependents: Dict[Tuple, List[Scenario]] = {}
        awaited: Dict[Tuple, ExperimentConfig] = {}
        baseline_jobs: List[Tuple[str, ExperimentConfig, Optional[float]]] = []
        for label, config in batch:
            key = config.baseline_key()
            dependents.setdefault(key, []).append((label, config))
            if key in baselines or key in awaited:
                continue
            clean = config.clean_variant()
            hit = self._cache_load(clean)
            if hit is None and ledger is not None:
                if not ledger.try_claim(config_hash(clean)):
                    # A live peer is computing this baseline right now;
                    # await its artifact after running our own jobs.
                    awaited[key] = clean
                    stats.baselines_awaited += 1
                    continue
                hit = self._cache_load(clean)
                if hit is not None:
                    ledger.release(config_hash(clean))
            if hit is not None:
                baselines[key] = hit[1].max_accuracy
                stats.baseline_cache_hits += 1
            else:
                baselines[key] = float("nan")  # placeholder until phase 1 ends
                baseline_jobs.append((f"baseline/{config_hash(clean)}", clean, None))

        baseline_results, baseline_failures = self._execute_batch(
            baseline_jobs, phase="baseline", ledger=ledger
        )
        failures.update(baseline_failures)
        stats.baselines_executed += len(baseline_results)
        for result in baseline_results.values():
            baselines[result.config.baseline_key()] = result.max_accuracy
        skipped_keys = set()
        for key, clean in awaited.items():
            if not self.wait_for_peers:
                # --no-wait: blocking on a peer's in-flight baseline is the
                # exact waiting the flag opts out of; give the dependent
                # cells back (release + skip) instead.
                skipped_keys.add(key)
                continue
            value = self._await_baseline(clean, ledger, stats, failures)
            if value is not None:
                baselines[key] = value
        for key in sorted(skipped_keys):
            for label, config in dependents.pop(key):
                stats.cells_skipped_claimed += 1
                if ledger is not None:
                    ledger.release(config_hash(config))
                self._emit(f"[claimed] {label} (a peer holds the baseline lease)")

        # Every placeholder must have been filled: a failed baseline job or
        # a baseline_key() round-trip mismatch would otherwise leak NaN into
        # the ASR of every dependent cell.  Those cells are failed and
        # skipped; the rest of the batch still runs.
        runnable: List[Scenario] = []
        for key, cells in dependents.items():
            if key in baselines and baselines[key] == baselines[key]:
                runnable.extend(cells)
                continue
            for label, config in cells:
                self._fail_cell(label, config, GridBaselineError._MARKER, failures, ledger)

        jobs = [
            (label, config, baselines[config.baseline_key()])
            for label, config in runnable
        ]
        results, grid_failures = self._execute_batch(jobs, phase="grid", ledger=ledger)
        failures.update(grid_failures)
        executed.update(results)
        stats.executed += len(results)

    def _await_baseline(
        self,
        clean: ExperimentConfig,
        ledger: ClaimLedger,
        stats: GridStats,
        failures: Dict[str, str],
    ) -> Optional[float]:
        """Wait for a peer's in-flight clean baseline, stealing if it dies.

        Polls the cache for the peer's artifact while its lease stays fresh;
        if the lease expires (or is released without an artifact), claims the
        cell and runs it locally.  Returns ``None`` only when the local
        fallback run itself failed (recorded in ``failures``).
        """
        chash = config_hash(clean)
        label = f"baseline/{chash}"
        self._emit(f"[await] {label} (a peer is computing this baseline)")
        while True:
            hit = self._cache_load(clean)
            if hit is not None:
                return hit[1].max_accuracy
            if ledger.try_claim(chash):
                hit = self._cache_load(clean)  # peer stored then released
                if hit is not None:
                    ledger.release(chash)
                    return hit[1].max_accuracy
                executed, batch_failures = self._execute_batch(
                    [(label, clean, None)], phase="baseline", ledger=ledger
                )
                failures.update(batch_failures)
                stats.baselines_executed += len(executed)
                for result in executed.values():
                    return result.max_accuracy
                return None
            ledger.refresh()
            time.sleep(min(ledger.heartbeat_interval, 0.5))

    def run(self, scenario_list: Sequence[Scenario]) -> List[Tuple[str, ExperimentResult]]:
        """Run every scenario (cache-aware) and return ``(label, result)`` pairs
        in input order.  Per-run statistics land in :attr:`last_stats`.

        Cells outside this runner's ``--shard`` partition are never touched
        and are omitted from the returned pairs — collect them from the
        shared cache once every shard finished (a plain re-run returns the
        full grid from cache).  Under ``claim_ttl`` the default
        ``wait_for_peers=True`` makes the returned pairs cover everything
        else: cells peers execute come back as cache hits.  With
        ``wait_for_peers=False``, cells still leased by live peers at the
        end are skipped and omitted likewise.  Failed cells raise
        :class:`GridExecutionError` at the end of the run, after every
        sibling completed.
        """
        labels = [label for label, _ in scenario_list]
        if len(set(labels)) != len(labels):
            duplicates = sorted({label for label in labels if labels.count(label) > 1})
            raise ValueError(f"duplicate scenario labels: {duplicates}")

        started = time.perf_counter()
        stats = GridStats(total=len(scenario_list))
        failures: Dict[str, str] = {}
        self._run_fault_stats = FaultStats()
        quarantine_start = quarantine_count()
        ledger: Optional[ClaimLedger] = None
        if self.claim_ttl is not None:
            ledger = ClaimLedger(self.cache_dir, self.runner_id, self.claim_ttl)
            # Heartbeat from a daemon thread: the serial (workers=1) path
            # cannot refresh while a cell runs in this very process, and a
            # pool batch can outlast the TTL between wait() wake-ups.
            ledger.start_heartbeat()

        cached: Dict[str, ExperimentResult] = {}
        executed: Dict[str, ExperimentResult] = {}
        baselines: Dict[Tuple, float] = {}
        try:
            remaining: List[Scenario] = []
            for label, config in scenario_list:
                chash = config_hash(config)
                if self.shard is not None and shard_of(chash, self.shard[1]) != self.shard[0]:
                    stats.cells_skipped_shard += 1
                    continue
                hit = self._cache_load(config)
                if hit is not None:
                    cached[label] = hit[1]
                    stats.cache_hits += 1
                    self._emit(f"[cache] {label}")
                else:
                    remaining.append((label, config))

            # One batch-level dispatch decision for the whole set of pending
            # cells: the "grid" site picks process fan-out (and the worker
            # count) or the in-process serial path.
            decision = self.dispatch.decide(
                "grid", items=len(remaining), work=float(len(remaining))
            )
            self.workers = (
                decision.workers if decision.backend == "process" else 1
            )

            # Publish every distinct dataset of the sweep once per host; the
            # worker-pool initializer (or the in-process memo for workers=1)
            # makes cells attach instead of regenerating.  Clean baselines
            # share their cells' dataset fields, so they are covered too.
            if self.share_datasets and remaining:
                self._broker = DatasetBroker(use_shared_memory=self.workers > 1)
                self._broker.publish([config for _, config in remaining])
                stats.dataset_publications = self._broker.publications

            # Claim and execute in batches: without a ledger one batch covers
            # the whole grid (classic two-phase run); with one, small batches
            # let concurrent runners interleave through the grid instead of
            # the first arrival claiming every cell upfront.
            batch_size = len(remaining) if ledger is None else max(4, 2 * self.workers)
            while remaining:
                batch, remaining, progressed = self._claim_batch(
                    remaining, batch_size, ledger, cached, stats
                )
                if batch:
                    self._run_batch(batch, baselines, ledger, stats, failures, executed)
                    continue
                if not remaining:
                    break
                if not self.wait_for_peers:
                    stats.cells_skipped_claimed += len(remaining)
                    for label, _ in remaining:
                        self._emit(f"[claimed] {label} (a peer holds the lease)")
                    break
                if not progressed:
                    # Peers hold every remaining cell: poll until their
                    # artifacts land (cache hits) or their leases go stale
                    # (the next _claim_batch steals them).
                    time.sleep(min(1.0, ledger.heartbeat_interval))
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._broker is not None:
                self._broker.close()
                self._broker = None
            if ledger is not None:
                ledger.stop_heartbeat()
                ledger.release_all()
                stats.claims_acquired = ledger.acquired
                stats.claims_stolen = ledger.stolen
                stats.claims_expired = ledger.expired
                stats.claims_lost = ledger.lost
            stats.failed = len(failures)
            self._run_fault_stats.artifacts_quarantined += (
                quarantine_count() - quarantine_start
            )
            stats.fault_stats = (
                self._run_fault_stats.to_dict()
                if self._run_fault_stats.any()
                else {}
            )
            stats.wall_seconds = time.perf_counter() - started
            stats.dispatch_decisions = self.dispatch.trace_dicts()
            self.last_stats = stats
            self.last_failures = dict(failures)

        ordered: List[Tuple[str, ExperimentResult]] = []
        for label, _ in scenario_list:
            if label in cached:
                ordered.append((label, cached[label]))
            elif label in executed:
                ordered.append((label, executed[label]))
        if failures:
            baseline_starved = sorted(
                label
                for label, message in failures.items()
                if message == GridBaselineError._MARKER
            )
            if baseline_starved:
                raise GridBaselineError(baseline_starved, failures, ordered)
            raise GridExecutionError(failures, ordered)
        return ordered


def run_grid(
    scenario_list: Sequence[Scenario],
    workers: Optional[int] = None,
    cache_dir: Optional[PathLike] = None,
    progress: Optional[ProgressFn] = None,
    policy=None,
    **runner_kwargs,
) -> List[Tuple[str, ExperimentResult]]:
    """One-shot convenience wrapper around :class:`GridRunner`."""
    return GridRunner(
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
        policy=policy,
        **runner_kwargs,
    ).run(scenario_list)
