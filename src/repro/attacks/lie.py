"""The "A Little Is Enough" (LIE) attack (Baruch et al., NeurIPS 2019).

LIE computes the coordinate-wise mean and standard deviation of the benign
updates and shifts the mean by a small factor ``z`` chosen such that the
malicious update still falls within the range that Byzantine-robust
aggregation rules consider acceptable.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np
from scipy import stats

from ..fl.types import AttackRoundContext, ModelUpdate
from .base import Attack

__all__ = ["LieAttack", "lie_z_max"]


def lie_z_max(num_clients: int, num_malicious: int) -> float:
    """The maximal shift factor ``z`` from the LIE paper.

    With ``n`` participating clients and ``m`` of them malicious, the number
    of benign updates required for a supermajority is
    ``s = floor(n/2 + 1) - m``; the attack then picks the largest ``z`` such
    that the fraction of benign updates expected to be further from the mean
    than the malicious one is at least ``s / (n - m)``.
    """
    if num_clients <= num_malicious:
        raise ValueError("number of malicious clients must be smaller than total clients")
    benign = num_clients - num_malicious
    s = math.floor(num_clients / 2 + 1) - num_malicious
    s = max(s, 0)
    quantile = (benign - s) / benign if benign > 0 else 0.0
    quantile = min(max(quantile, 1e-6), 1.0 - 1e-6)
    return float(stats.norm.ppf(quantile))


class LieAttack(Attack):
    """Shift the benign mean by ``z`` standard deviations per coordinate.

    Parameters
    ----------
    z:
        Fixed shift factor.  If ``None`` (default), the factor is computed
        per round from the number of selected clients via :func:`lie_z_max`.
    min_z:
        Lower bound on the computed factor.  With the small per-round cohorts
        of cross-device FL (10 selected clients), the closed-form ``z`` can
        degenerate to zero, which would turn the attack into a no-op; the
        floor keeps the characteristic "small static shift" behaviour.
    """

    name = "lie"
    requires_benign_updates = True
    requires_attacker_data = False

    def __init__(self, z: Optional[float] = None, min_z: float = 0.3) -> None:
        if min_z < 0:
            raise ValueError("min_z must be non-negative")
        self.z = z
        self.min_z = min_z

    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        benign = self._benign_matrix(context)
        num_malicious = len(context.selected_malicious_ids)
        num_clients = benign.shape[0] + num_malicious
        if self.z is not None:
            z = self.z
        else:
            z = max(lie_z_max(num_clients, num_malicious), self.min_z)
        mean = benign.mean(axis=0)
        std = benign.std(axis=0)
        vector = mean - z * std
        return self._replicate(vector, context)
