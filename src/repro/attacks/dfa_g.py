"""DFA-G: the data-free attack based on a generator network (Sec. III-D).

The attacker maintains a lightweight transpose-convolutional generator ``G``
across rounds.  Each round it

1. feeds a *fixed* Gaussian noise batch ``Z`` (same seed every round) through
   ``G`` to produce synthetic images,
2. trains ``G`` to *maximize* the frozen global model's cross-entropy between
   its predictions for ``G(Z)`` and the fixed randomly chosen class ``Ỹ`` —
   i.e. the generated images are steered away from class ``Ỹ``,
3. labels all generated images as ``Ỹ`` (implicit label flipping) and trains
   the adversarial classifier with the distance-regularized loss.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..fl.types import AttackRoundContext, ModelUpdate
from ..models.generator import TCNNGenerator
from ..nn import functional as F
from ..nn.optim import Adam
from ..nn.serialization import set_flat_params
from ..nn.tensor import Tensor
from .base import Attack
from .dfa_common import DfaHyperParameters, train_adversarial_classifier

__all__ = ["DfaG"]


class DfaG(Attack):
    """Data-free attack with a trainable generator network (DFA-G)."""

    name = "dfa-g"
    requires_benign_updates = False
    requires_attacker_data = False

    def __init__(
        self,
        hyper: Optional[DfaHyperParameters] = None,
        noise_dim: int = 64,
        base_width: int = 16,
        seed: int = 54321,
    ) -> None:
        self.hyper = hyper or DfaHyperParameters()
        if noise_dim < 1:
            raise ValueError("noise_dim must be at least 1")
        self.noise_dim = noise_dim
        self.base_width = base_width
        self._rng = np.random.default_rng(seed)
        self.target_label: Optional[int] = None
        self.generator: Optional[TCNNGenerator] = None
        self._fixed_noise: Optional[np.ndarray] = None
        #: per-round list of per-epoch generator losses; DFA-G *maximizes*
        #: this quantity (Fig. 7 plots the increasing curve).
        self.synthesis_loss_history: List[List[float]] = []
        #: per-round list of per-epoch classifier losses.
        self.classifier_loss_history: List[List[float]] = []

    # ------------------------------------------------------------------
    def _ensure_generator(self, context: AttackRoundContext) -> TCNNGenerator:
        if self.generator is None:
            channels, height, width = context.image_shape
            if height != width:
                raise ValueError("DFA-G expects square images")
            self.generator = TCNNGenerator(
                noise_dim=self.noise_dim,
                out_channels=channels,
                image_size=height,
                base_width=self.base_width,
                rng=self._rng,
            )
            # The same noise batch is reused every round so that the
            # generator consistently maps it to malicious images.
            self._fixed_noise = self.generator.sample_noise(
                self.hyper.num_synthetic, self._rng
            )
        return self.generator

    def _frozen_global_model(self, context: AttackRoundContext):
        model = context.model_factory()
        set_flat_params(model, context.global_params)
        model.eval()
        model.requires_grad_(False)
        return model

    def synthesize(self, context: AttackRoundContext) -> np.ndarray:
        """Step 1: update the generator and produce the synthetic set ``S``."""
        generator = self._ensure_generator(context)
        global_model = self._frozen_global_model(context)
        noise = Tensor(self._fixed_noise)
        target = np.full(
            self.hyper.num_synthetic, self.target_label, dtype=np.int64
        )

        epoch_losses: List[float] = []
        if self.hyper.train_synthesizer:
            optimizer = Adam(generator.parameters(), lr=self.hyper.synthesis_lr)
            for _ in range(self.hyper.synthesis_epochs):
                optimizer.zero_grad()
                images = generator(noise)
                logits = global_model(images)
                cross_entropy = F.cross_entropy(logits, target)
                # Maximize the cross-entropy towards Ỹ => minimize its negation.
                loss = -cross_entropy
                loss.backward()
                optimizer.step()
                epoch_losses.append(float(cross_entropy.item()))
        self.synthesis_loss_history.append(epoch_losses)
        images = generator(noise)
        return images.data.astype(np.float32).copy()

    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        if self.target_label is None:
            self.target_label = int(self._rng.integers(0, context.num_classes))
        synthetic_images = self.synthesize(context)
        labels = np.full(len(synthetic_images), self.target_label, dtype=np.int64)
        vector, losses = train_adversarial_classifier(
            context, synthetic_images, labels, self.hyper
        )
        self.classifier_loss_history.append(losses)
        return self._replicate(vector, context, num_samples=len(synthetic_images))
