"""Distance-based regularization (Eq. 3) shared by the DFA attack variants.

The adversarial classifier is trained with

    L = F(w, S) + Ld,    Ld = ||w - w(t)||_2 - ||w(t) - w(t-1)||_2,

which steers the malicious update's deviation from the current global model
to be of similar magnitude as the global model's own change in the previous
round, so that distance-based defenses do not flag it as an outlier.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.modules import Module
from ..nn.serialization import vector_to_state_dict
from ..nn.tensor import Tensor

__all__ = ["DistanceRegularizer"]


class DistanceRegularizer:
    """Callable computing ``Ld`` for a model inside the autograd graph.

    Parameters
    ----------
    global_params, previous_global_params:
        Flat vectors ``w(t)`` and ``w(t-1)``.  If the previous round's model
        is unknown (first round), the constant second term is zero.
    weight:
        Scale of the regularization term added to the loss.
    """

    def __init__(
        self,
        reference_model: Module,
        global_params: np.ndarray,
        previous_global_params: Optional[np.ndarray],
        weight: float = 1.0,
    ) -> None:
        self.weight = weight
        self._target_state = vector_to_state_dict(global_params, reference_model)
        if previous_global_params is None:
            self.previous_round_distance = 0.0
        else:
            diff = np.asarray(global_params, dtype=np.float64) - np.asarray(
                previous_global_params, dtype=np.float64
            )
            self.previous_round_distance = float(np.linalg.norm(diff))

    def __call__(self, model: Module) -> Tensor:
        """Return the regularization term as a scalar tensor in the graph."""
        squared_total: Optional[Tensor] = None
        for name, param in model.named_parameters():
            target = Tensor(self._target_state[name])
            diff = param - target
            contribution = (diff * diff).sum()
            squared_total = contribution if squared_total is None else squared_total + contribution
        if squared_total is None:
            raise ValueError("model has no parameters to regularize")
        distance = (squared_total + 1e-12) ** 0.5
        return (distance - self.previous_round_distance) * self.weight
