"""Untargeted poisoning attacks on federated learning.

The package contains the paper's two data-free attacks (DFA-R and DFA-G),
the state-of-the-art baselines it compares against (LIE, Fang, Min-Max,
Min-Sum), the real-data comparator of Fig. 8 and simple auxiliary attacks.
"""

from .base import Attack
from .dfa_common import DfaHyperParameters
from .dfa_g import DfaG
from .dfa_hybrid import DfaHybrid
from .dfa_r import DfaR
from .fang import FangAttack
from .lie import LieAttack, lie_z_max
from .minmax import MinMaxAttack, MinSumAttack
from .real_data import RealDataFlip
from .registry import ATTACK_REGISTRY, available_attacks, build_attack
from .regularization import DistanceRegularizer
from .simple import LabelFlip, RandomWeights, SignFlip

__all__ = [
    "Attack",
    "DfaHyperParameters",
    "DfaR",
    "DfaG",
    "DfaHybrid",
    "LieAttack",
    "lie_z_max",
    "FangAttack",
    "MinMaxAttack",
    "MinSumAttack",
    "RealDataFlip",
    "RandomWeights",
    "SignFlip",
    "LabelFlip",
    "DistanceRegularizer",
    "ATTACK_REGISTRY",
    "build_attack",
    "available_attacks",
]
