"""Min-Max and Min-Sum attacks (Shejwalkar & Houmansadr, NDSS 2021).

Both attacks craft the malicious update as ``mean(benign) + gamma * p`` where
``p`` is a dataset-tailored perturbation direction and ``gamma`` is maximized
under a stealthiness constraint expressed in terms of distances to the benign
updates:

* **Min-Max**: the maximum distance of the malicious update to any benign
  update must not exceed the maximum pairwise distance among benign updates.
* **Min-Sum**: the sum of squared distances of the malicious update to the
  benign updates must not exceed the maximum such sum over benign updates.

As in the paper's evaluation we use the aggregation-agnostic (AGR-agnostic)
variant, which does not require knowledge of the server's defense.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..fl.types import AttackRoundContext, ModelUpdate
from .base import Attack

__all__ = ["MinMaxAttack", "MinSumAttack"]

_PERTURBATIONS = ("unit_vec", "std", "sign")


def _perturbation(benign: np.ndarray, kind: str) -> np.ndarray:
    """Perturbation direction ``p`` from the original paper."""
    mean = benign.mean(axis=0)
    if kind == "unit_vec":
        norm = np.linalg.norm(mean)
        return -mean / norm if norm > 0 else -np.ones_like(mean) / np.sqrt(mean.size)
    if kind == "std":
        return -benign.std(axis=0)
    if kind == "sign":
        return -np.sign(mean)
    raise ValueError(f"unknown perturbation '{kind}'; choose from {_PERTURBATIONS}")


class _OptimizedScalingAttack(Attack):
    """Shared gamma-search machinery of Min-Max and Min-Sum."""

    requires_benign_updates = True
    requires_attacker_data = False

    def __init__(
        self,
        perturbation: str = "std",
        gamma_init: float = 10.0,
        threshold: float = 1e-3,
        max_iterations: int = 30,
    ) -> None:
        if perturbation not in _PERTURBATIONS:
            raise ValueError(f"unknown perturbation '{perturbation}'; choose from {_PERTURBATIONS}")
        if gamma_init <= 0:
            raise ValueError("gamma_init must be positive")
        self.perturbation = perturbation
        self.gamma_init = gamma_init
        self.threshold = threshold
        self.max_iterations = max_iterations
        self.last_gamma: float = 0.0

    # -- constraint --------------------------------------------------------
    def _budget(self, benign: np.ndarray) -> float:
        raise NotImplementedError

    def _cost(self, candidate: np.ndarray, benign: np.ndarray) -> float:
        raise NotImplementedError

    # -- crafting ----------------------------------------------------------
    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        benign = self._benign_matrix(context)
        mean = benign.mean(axis=0)
        if benign.shape[0] < 2:
            # A single observed benign update gives no distance budget; fall
            # back to submitting the mean itself.
            return self._replicate(mean, context)
        direction = _perturbation(benign, self.perturbation)
        budget = self._budget(benign)

        gamma = self.gamma_init
        step = self.gamma_init / 2.0
        best_gamma = 0.0
        for _ in range(self.max_iterations):
            candidate = mean + gamma * direction
            if self._cost(candidate, benign) <= budget:
                best_gamma = max(best_gamma, gamma)
                gamma = gamma + step
            else:
                gamma = gamma - step
            step = step / 2.0
            if step < self.threshold:
                break
        self.last_gamma = best_gamma
        vector = mean + best_gamma * direction
        return self._replicate(vector, context)


class MinMaxAttack(_OptimizedScalingAttack):
    """Maximize gamma subject to the max-distance constraint."""

    name = "min-max"

    def _budget(self, benign: np.ndarray) -> float:
        diffs = benign[:, None, :] - benign[None, :, :]
        distances = np.linalg.norm(diffs, axis=-1)
        return float(distances.max())

    def _cost(self, candidate: np.ndarray, benign: np.ndarray) -> float:
        return float(np.linalg.norm(benign - candidate[None, :], axis=1).max())


class MinSumAttack(_OptimizedScalingAttack):
    """Maximize gamma subject to the sum-of-squared-distances constraint."""

    name = "min-sum"

    def _budget(self, benign: np.ndarray) -> float:
        diffs = benign[:, None, :] - benign[None, :, :]
        squared = (diffs ** 2).sum(axis=-1)
        return float(squared.sum(axis=1).max())

    def _cost(self, candidate: np.ndarray, benign: np.ndarray) -> float:
        return float(((benign - candidate[None, :]) ** 2).sum())
