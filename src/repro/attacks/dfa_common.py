"""Shared machinery of the two DFA variants.

Both DFA-R and DFA-G follow the same two-step structure (Sec. III-B):

1. synthesize a malicious image set ``S`` by optimizing against the frozen
   current global model (each variant does this differently);
2. train the adversarial classifier on ``S`` paired with the chosen label
   ``Ỹ`` using the distance-regularized loss of Eq. 3.

This module implements step 2 plus small helpers used by both variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..fl.training import train_on_arrays
from ..fl.types import AttackRoundContext, LocalTrainingConfig
from ..nn.modules import Module
from ..nn.serialization import get_flat_params, set_flat_params
from .regularization import DistanceRegularizer

__all__ = ["DfaHyperParameters", "train_adversarial_classifier", "_ArrayView"]


class _ArrayView:
    """Minimal dataset adapter exposing ``arrays()`` over in-memory arrays."""

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.labels)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.images, self.labels


@dataclass
class DfaHyperParameters:
    """Hyper-parameters shared by DFA-R and DFA-G.

    Attributes
    ----------
    num_synthetic:
        ``|S|``, the number of synthetic images generated per round; the
        paper uses a value similar to the benign clients' shard size (50).
    synthesis_epochs:
        ``E``, the number of epochs used to optimize the filter layer /
        generator per round (5 for Fashion-MNIST, 10 for CIFAR-10/SVHN).
    synthesis_lr:
        Learning rate of the Adam optimizer used for synthesis.
    train_synthesizer:
        If ``False``, the filter/generator stays at its random
        initialization — the "Static" ablation of Table III.
    use_regularization:
        If ``False``, the distance-based regularization term of Eq. 3 is
        dropped — the ablation of Table IV.
    regularization_weight:
        Scale of the regularization term when enabled.
    """

    num_synthetic: int = 50
    synthesis_epochs: int = 5
    synthesis_lr: float = 0.01
    train_synthesizer: bool = True
    use_regularization: bool = True
    regularization_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.num_synthetic < 1:
            raise ValueError("num_synthetic must be at least 1")
        if self.synthesis_epochs < 1:
            raise ValueError("synthesis_epochs must be at least 1")
        if self.synthesis_lr <= 0:
            raise ValueError("synthesis_lr must be positive")
        if self.regularization_weight < 0:
            raise ValueError("regularization_weight must be non-negative")


def train_adversarial_classifier(
    context: AttackRoundContext,
    synthetic_images: np.ndarray,
    labels: np.ndarray,
    hyper: DfaHyperParameters,
) -> Tuple[np.ndarray, List[float]]:
    """Step 2 of DFA: train the malicious local model on the synthetic set.

    Returns the flat parameter vector of the adversarial model
    ``w_m(t + 1)`` and the per-epoch training losses.
    """
    model = context.model_factory()
    set_flat_params(model, context.global_params)
    regularizer = None
    if hyper.use_regularization:
        regularizer = DistanceRegularizer(
            reference_model=model,
            global_params=context.global_params,
            previous_global_params=context.previous_global_params,
            weight=hyper.regularization_weight,
        )
    losses = train_on_arrays(
        model,
        synthetic_images,
        labels,
        context.training_config,
        context.rng,
        extra_loss=regularizer,
    )
    return get_flat_params(model), losses
