"""DFA-Hybrid: combining synthetic and real data in one attack.

The paper's conclusion lists "check whether combining synthetic and real data
in an attack can improve attack effectiveness" as future work.  This attack
implements that combination: per round it builds the malicious training set
from a mix of DFA-style optimized synthetic images (produced by a DFA-R or
DFA-G synthesizer) and real images owned by the attacker clients, all
labelled with the fixed class ``Ỹ`` and trained with the distance-regularized
adversarial loss.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..fl.types import AttackRoundContext, ModelUpdate
from .base import Attack
from .dfa_common import DfaHyperParameters, train_adversarial_classifier
from .dfa_g import DfaG
from .dfa_r import DfaR

__all__ = ["DfaHybrid"]


class DfaHybrid(Attack):
    """Mix optimized synthetic images with real attacker data.

    Parameters
    ----------
    synthetic_fraction:
        Fraction of the malicious training set drawn from the synthesizer;
        the remainder is sampled from the attacker clients' real shards.
        ``1.0`` reduces to pure DFA, ``0.0`` to the real-data comparator.
    variant:
        Which synthesizer to use: ``"dfa-r"`` (filter layer) or ``"dfa-g"``
        (generator network).
    """

    name = "dfa-hybrid"
    requires_benign_updates = False
    requires_attacker_data = True

    def __init__(
        self,
        hyper: Optional[DfaHyperParameters] = None,
        synthetic_fraction: float = 0.5,
        variant: str = "dfa-r",
        seed: int = 2024,
    ) -> None:
        if not 0.0 <= synthetic_fraction <= 1.0:
            raise ValueError("synthetic_fraction must be in [0, 1]")
        if variant not in ("dfa-r", "dfa-g"):
            raise ValueError("variant must be 'dfa-r' or 'dfa-g'")
        self.hyper = hyper or DfaHyperParameters()
        self.synthetic_fraction = synthetic_fraction
        self.variant = variant
        self._rng = np.random.default_rng(seed)
        self.target_label: Optional[int] = None
        if variant == "dfa-r":
            self._synthesizer = DfaR(hyper=self.hyper, seed=seed + 1)
        else:
            self._synthesizer = DfaG(hyper=self.hyper, seed=seed + 1)

    # ------------------------------------------------------------------
    def _real_images(self, context: AttackRoundContext, count: int) -> np.ndarray:
        blocks = []
        for dataset in (context.attacker_datasets or {}).values():
            if len(dataset) == 0:
                continue
            images, _ = dataset.arrays()
            blocks.append(images)
        if not blocks:
            raise ValueError("DFA-Hybrid requires attacker-owned data shards")
        pool = np.concatenate(blocks, axis=0)
        if count >= len(pool):
            return pool
        chosen = self._rng.choice(len(pool), size=count, replace=False)
        return pool[chosen]

    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        if self.target_label is None:
            self.target_label = int(self._rng.integers(0, context.num_classes))
        # Keep both components labelling towards the same class.
        self._synthesizer.target_label = self.target_label

        total = self.hyper.num_synthetic
        num_synthetic = int(round(self.synthetic_fraction * total))
        num_real = total - num_synthetic

        parts = []
        if num_synthetic > 0:
            synthetic = self._synthesizer.synthesize(context)
            parts.append(synthetic[:num_synthetic])
        if num_real > 0:
            parts.append(self._real_images(context, num_real))
        images = np.concatenate(parts, axis=0).astype(np.float32)
        labels = np.full(len(images), self.target_label, dtype=np.int64)
        vector, _ = train_adversarial_classifier(context, images, labels, self.hyper)
        return self._replicate(vector, context, num_samples=len(images))
