"""The Fang attack (Fang et al., USENIX Security 2020).

The attack steers each global-model parameter in the direction *opposite* to
the benign update direction.  As in the paper's evaluation, we use the
variant crafted against Trimmed-mean/Median with partial knowledge (the
attacker estimates the benign distribution from the benign updates it
observes): for each coordinate, the malicious value is sampled several
standard deviations away from the benign mean, on the side opposite to the
benign movement direction.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..fl.types import AttackRoundContext, ModelUpdate
from .base import Attack

__all__ = ["FangAttack"]


class FangAttack(Attack):
    """Directed-deviation attack against Trimmed-mean/Median aggregation.

    Parameters
    ----------
    low, high:
        The malicious value for a coordinate moving in direction ``s`` is
        sampled uniformly from ``[mean + low*std, mean + high*std]`` on the
        side ``-s`` (the original paper uses 3 and 4).
    """

    name = "fang"
    requires_benign_updates = True
    requires_attacker_data = False

    def __init__(self, low: float = 3.0, high: float = 4.0) -> None:
        if low <= 0 or high <= low:
            raise ValueError("need 0 < low < high")
        self.low = low
        self.high = high

    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        benign = self._benign_matrix(context)
        mean = benign.mean(axis=0)
        std = benign.std(axis=0)
        # Benign movement direction of each parameter relative to the global model.
        direction = np.sign(mean - context.global_params)
        direction[direction == 0] = 1.0
        magnitude = context.rng.uniform(self.low, self.high, size=mean.shape)
        vector = mean - direction * magnitude * std
        return self._replicate(vector, context)
