"""Real-data comparator used in the "synthetic vs real data" ablation (Fig. 8).

The attack follows the DFA training pipeline (single chosen label ``Ỹ``,
distance-regularized adversarial classifier training) but replaces the
synthetic image set with *real* images owned by the attacker clients, which
are assigned shards under the same Dirichlet distribution as benign users.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..fl.types import AttackRoundContext, ModelUpdate
from .base import Attack
from .dfa_common import DfaHyperParameters, train_adversarial_classifier

__all__ = ["RealDataFlip"]


class RealDataFlip(Attack):
    """Train the adversarial classifier on real data labelled with ``Ỹ``."""

    name = "real-data"
    requires_benign_updates = False
    requires_attacker_data = True

    def __init__(self, hyper: Optional[DfaHyperParameters] = None, seed: int = 777) -> None:
        self.hyper = hyper or DfaHyperParameters()
        self._rng = np.random.default_rng(seed)
        self.target_label: Optional[int] = None

    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        if not context.attacker_datasets:
            raise ValueError("the real-data attack requires attacker-owned data shards")
        if self.target_label is None:
            self.target_label = int(self._rng.integers(0, context.num_classes))

        # Pool all attacker-owned data; the adversary is a single entity.
        image_blocks = []
        for dataset in context.attacker_datasets.values():
            if len(dataset) == 0:
                continue
            images, _ = dataset.arrays()
            image_blocks.append(images)
        if not image_blocks:
            raise ValueError("attacker datasets are all empty")
        images = np.concatenate(image_blocks, axis=0)
        if len(images) > self.hyper.num_synthetic:
            chosen = self._rng.choice(len(images), size=self.hyper.num_synthetic, replace=False)
            images = images[chosen]
        labels = np.full(len(images), self.target_label, dtype=np.int64)
        vector, _ = train_adversarial_classifier(context, images, labels, self.hyper)
        return self._replicate(vector, context, num_samples=len(images))
