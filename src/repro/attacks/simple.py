"""Simple baseline attacks: random weights, sign flipping, label flipping.

``RandomWeights`` reproduces the motivating experiment of Sec. III-B (random
model weights are almost always filtered out by mKrum/Bulyan).  ``SignFlip``
and ``LabelFlip`` are classic poisoning baselines included for completeness
of the attack suite; they are not part of the paper's main comparison.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..fl.training import train_local_model
from ..fl.types import AttackRoundContext, ModelUpdate
from ..nn.serialization import get_flat_params, set_flat_params
from .base import Attack

__all__ = ["RandomWeights", "SignFlip", "LabelFlip"]


class RandomWeights(Attack):
    """Submit a model whose parameters are drawn at random each round.

    The parameter scale matches the empirical standard deviation of the
    current global model so that the update is not trivially detectable by
    magnitude alone.
    """

    name = "random-weights"
    requires_benign_updates = False
    requires_attacker_data = False

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        std = float(context.global_params.std()) or 1.0
        vector = context.rng.normal(0.0, self.scale * std, size=context.global_params.shape)
        return self._replicate(vector, context)


class SignFlip(Attack):
    """Reflect the benign mean update across the global model.

    The crafted model is ``w(t) - gamma * (mean(benign) - w(t))``, i.e. the
    benign update direction with its sign flipped, which requires knowledge
    of the benign updates.
    """

    name = "sign-flip"
    requires_benign_updates = True
    requires_attacker_data = False

    def __init__(self, gamma: float = 1.0) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = gamma

    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        benign = self._benign_matrix(context)
        mean_update = benign.mean(axis=0) - context.global_params
        vector = context.global_params - self.gamma * mean_update
        return self._replicate(vector, context)


class LabelFlip(Attack):
    """Classic data poisoning: train on real local data with flipped labels.

    Label ``l`` is mapped to ``num_classes - 1 - l``.  Requires the attacker
    clients to own real data shards.
    """

    name = "label-flip"
    requires_benign_updates = False
    requires_attacker_data = True

    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        if not context.attacker_datasets:
            raise ValueError("label flipping requires attacker-owned data shards")
        updates: List[ModelUpdate] = []
        for client_id in context.selected_malicious_ids:
            dataset = context.attacker_datasets.get(client_id)
            if dataset is None or len(dataset) == 0:
                # Attacker client without data falls back to submitting the
                # unchanged global model (a no-op contribution).
                updates.append(
                    ModelUpdate(
                        client_id=client_id,
                        parameters=context.global_params.copy(),
                        num_samples=max(context.benign_num_samples, 1),
                        is_malicious=True,
                    )
                )
                continue
            images, labels = dataset.arrays()
            flipped = (context.num_classes - 1) - labels
            model = context.model_factory()
            set_flat_params(model, context.global_params)
            from .dfa_common import _ArrayView  # lightweight dataset adapter

            train_local_model(
                model, _ArrayView(images, flipped), context.training_config, context.rng
            )
            updates.append(
                ModelUpdate(
                    client_id=client_id,
                    parameters=get_flat_params(model),
                    num_samples=len(labels),
                    is_malicious=True,
                )
            )
        return updates
