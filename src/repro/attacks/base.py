"""Attack interface for untargeted poisoning of federated learning."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from ..fl.types import AttackRoundContext, ModelUpdate

__all__ = ["Attack"]


class Attack(ABC):
    """Base class of all untargeted attacks.

    An attack models a *single adversary* that controls a set of Sybil
    clients.  Once per round, :meth:`craft_updates` is invoked with an
    :class:`~repro.fl.types.AttackRoundContext` and must return one
    :class:`~repro.fl.types.ModelUpdate` per selected malicious client.

    Class attributes encode the knowledge assumptions of Table I:

    ``requires_benign_updates``
        The attack reads the benign updates of the current round
        (LIE, Fang, Min-Max, Min-Sum).
    ``requires_attacker_data``
        The attack needs real training data at the adversary
        (label flipping, the real-data comparator of Fig. 8).

    The data-free attacks DFA-R and DFA-G set both flags to ``False``.
    """

    name: str = "attack"
    requires_benign_updates: bool = False
    requires_attacker_data: bool = False

    @abstractmethod
    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        """Produce the malicious updates for the selected attacker clients."""

    # ------------------------------------------------------------------
    # Helpers shared by concrete attacks
    # ------------------------------------------------------------------
    def _replicate(
        self,
        vector: np.ndarray,
        context: AttackRoundContext,
        num_samples: Optional[int] = None,
    ) -> List[ModelUpdate]:
        """Submit the same crafted parameter vector from every Sybil client.

        The threat model allows all attackers to submit identical updates;
        see Sec. III-A of the paper.
        """
        num_samples = num_samples or context.benign_num_samples
        return [
            ModelUpdate(
                client_id=client_id,
                parameters=np.array(vector, copy=True),
                num_samples=num_samples,
                is_malicious=True,
            )
            for client_id in context.selected_malicious_ids
        ]

    def _benign_matrix(self, context: AttackRoundContext) -> np.ndarray:
        """Stack the benign updates the attack is allowed to observe."""
        if not self.requires_benign_updates:
            raise RuntimeError(
                f"{self.name} declares requires_benign_updates=False but asked for them"
            )
        if not context.benign_updates:
            raise ValueError(f"{self.name} requires benign updates but none were provided")
        return np.stack([update.parameters for update in context.benign_updates], axis=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
