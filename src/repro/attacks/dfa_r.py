"""DFA-R: the data-free attack based on an optimized filter layer (Sec. III-C).

Each round, the attacker

1. draws random dummy images ``A`` (uniform pixels),
2. trains a single convolutional *filter layer* that maps ``A`` to synthetic
   images ``B`` such that the frozen global model's prediction for ``B`` is
   maximally ambiguous (uniform over all ``L`` classes), by minimizing the
   cross-entropy between the predicted distribution and ``Y_D = [1/L, ...]``,
3. labels the resulting synthetic images with a randomly chosen class ``Ỹ``
   and trains the adversarial classifier with the distance-regularized loss.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..fl.types import AttackRoundContext, ModelUpdate
from ..models.generator import FilterNet
from ..nn import functional as F
from ..nn.optim import Adam
from ..nn.serialization import set_flat_params
from ..nn.tensor import Tensor
from .base import Attack
from .dfa_common import DfaHyperParameters, train_adversarial_classifier

__all__ = ["DfaR"]


class DfaR(Attack):
    """Data-free attack with a trainable filter layer (DFA-R)."""

    name = "dfa-r"
    requires_benign_updates = False
    requires_attacker_data = False

    def __init__(
        self,
        hyper: Optional[DfaHyperParameters] = None,
        kernel_size: int = 3,
        num_filter_groups: int = 1,
        seed: int = 12345,
    ) -> None:
        self.hyper = hyper or DfaHyperParameters()
        if kernel_size < 1:
            raise ValueError("kernel_size must be at least 1")
        if num_filter_groups < 1:
            raise ValueError("num_filter_groups must be at least 1")
        self.kernel_size = kernel_size
        self.num_filter_groups = num_filter_groups
        self._rng = np.random.default_rng(seed)
        self.target_label: Optional[int] = None
        #: per-round list of per-epoch synthesis losses (Fig. 7 data).
        self.synthesis_loss_history: List[List[float]] = []
        #: per-round list of per-epoch classifier losses.
        self.classifier_loss_history: List[List[float]] = []

    # ------------------------------------------------------------------
    def _frozen_global_model(self, context: AttackRoundContext):
        model = context.model_factory()
        set_flat_params(model, context.global_params)
        model.eval()
        model.requires_grad_(False)
        return model

    def synthesize(self, context: AttackRoundContext) -> np.ndarray:
        """Step 1: produce the malicious synthetic image set ``S``."""
        channels, height, width = context.image_shape
        if height != width:
            raise ValueError("DFA-R expects square images")
        global_model = self._frozen_global_model(context)
        uniform_target = np.full(context.num_classes, 1.0 / context.num_classes)

        per_group = int(np.ceil(self.hyper.num_synthetic / self.num_filter_groups))
        images: List[np.ndarray] = []
        epoch_losses = np.zeros(self.hyper.synthesis_epochs, dtype=np.float64)
        for _ in range(self.num_filter_groups):
            filter_net = FilterNet(
                channels=channels,
                image_size=height,
                kernel_size=self.kernel_size,
                rng=self._rng,
            )
            dummy = Tensor(filter_net.sample_dummy(per_group, self._rng))
            if self.hyper.train_synthesizer:
                optimizer = Adam(filter_net.parameters(), lr=self.hyper.synthesis_lr)
                for epoch in range(self.hyper.synthesis_epochs):
                    optimizer.zero_grad()
                    synthetic = filter_net(dummy)
                    logits = global_model(synthetic)
                    loss = F.soft_cross_entropy(logits, uniform_target)
                    loss.backward()
                    optimizer.step()
                    epoch_losses[epoch] += float(loss.item()) / self.num_filter_groups
            synthetic = filter_net(dummy)
            images.append(synthetic.data.copy())
        self.synthesis_loss_history.append(list(epoch_losses))
        stacked = np.concatenate(images, axis=0)[: self.hyper.num_synthetic]
        return stacked.astype(np.float32)

    def craft_updates(self, context: AttackRoundContext) -> List[ModelUpdate]:
        if self.target_label is None:
            self.target_label = int(self._rng.integers(0, context.num_classes))
        synthetic_images = self.synthesize(context)
        labels = np.full(len(synthetic_images), self.target_label, dtype=np.int64)
        vector, losses = train_adversarial_classifier(
            context, synthetic_images, labels, self.hyper
        )
        self.classifier_loss_history.append(losses)
        return self._replicate(vector, context, num_samples=len(synthetic_images))
