"""Name-based construction of attacks, used by the experiment harness."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .base import Attack
from .dfa_g import DfaG
from .dfa_hybrid import DfaHybrid
from .dfa_r import DfaR
from .fang import FangAttack
from .lie import LieAttack
from .minmax import MinMaxAttack, MinSumAttack
from .real_data import RealDataFlip
from .simple import LabelFlip, RandomWeights, SignFlip

__all__ = ["ATTACK_REGISTRY", "build_attack", "available_attacks"]

ATTACK_REGISTRY: Dict[str, Callable[..., Attack]] = {
    "lie": LieAttack,
    "fang": FangAttack,
    "min-max": MinMaxAttack,
    "min-sum": MinSumAttack,
    "dfa-r": DfaR,
    "dfa-g": DfaG,
    "dfa-hybrid": DfaHybrid,
    "real-data": RealDataFlip,
    "random-weights": RandomWeights,
    "sign-flip": SignFlip,
    "label-flip": LabelFlip,
}


def available_attacks() -> List[str]:
    """Sorted list of registered attack names."""
    return sorted(ATTACK_REGISTRY)


def build_attack(name: Optional[str], **kwargs) -> Optional[Attack]:
    """Instantiate an attack by name; ``None`` or ``"none"`` means no attack."""
    if name is None or name.lower() == "none":
        return None
    key = name.lower()
    if key not in ATTACK_REGISTRY:
        raise KeyError(f"unknown attack '{name}'; choose from {available_attacks()}")
    return ATTACK_REGISTRY[key](**kwargs)
