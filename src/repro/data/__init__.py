"""Datasets, partitioning and loading utilities for the FL simulation."""

from .dataset import ArrayDataset, DataLoader, Subset, train_test_split
from .partition import (
    DirichletPartitioner,
    IidPartitioner,
    LabelSkewPartitioner,
    Partitioner,
    partition_dataset,
)
from .synthetic import (
    DATASET_FACTORIES,
    SyntheticImageSpec,
    SyntheticImageTask,
    cifar10_like,
    fashion_mnist_like,
    load_dataset,
    make_synthetic_task,
    svhn_like,
)

__all__ = [
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "train_test_split",
    "Partitioner",
    "IidPartitioner",
    "DirichletPartitioner",
    "LabelSkewPartitioner",
    "partition_dataset",
    "SyntheticImageSpec",
    "SyntheticImageTask",
    "make_synthetic_task",
    "fashion_mnist_like",
    "cifar10_like",
    "svhn_like",
    "load_dataset",
    "DATASET_FACTORIES",
]
