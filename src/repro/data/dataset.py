"""In-memory dataset containers and mini-batch iteration.

The FL simulation keeps every client's shard as an :class:`ArrayDataset`
(or a :class:`Subset` view into one) and iterates over it with
:class:`DataLoader`, mirroring the role of ``torch.utils.data`` in the
original implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ArrayDataset", "Subset", "DataLoader", "train_test_split"]


class ArrayDataset:
    """Dataset backed by an image array and an integer label array.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)``.
    labels:
        Integer array of shape ``(N,)``.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValueError(f"expected images of shape (N, C, H, W), got {images.shape}")
        if labels.ndim != 1:
            raise ValueError(f"expected 1-D labels, got shape {labels.shape}")
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels must have the same length")
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """Shape of a single image, ``(C, H, W)``."""
        return tuple(self.images.shape[1:])

    @property
    def num_classes(self) -> int:
        """Number of distinct classes (assumes labels in ``0..L-1``)."""
        return int(self.labels.max()) + 1 if len(self) else 0

    def class_counts(self, num_classes: Optional[int] = None) -> np.ndarray:
        """Histogram of labels over ``num_classes`` bins."""
        num_classes = num_classes or self.num_classes
        return np.bincount(self.labels, minlength=num_classes)

    def subset(self, indices: Sequence[int]) -> "Subset":
        """Return a lightweight view of the selected samples."""
        return Subset(self, indices)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the full ``(images, labels)`` arrays."""
        return self.images, self.labels


class Subset:
    """View of a subset of an :class:`ArrayDataset` given by indices."""

    def __init__(self, dataset: ArrayDataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = np.asarray(indices, dtype=np.int64)
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= len(dataset)
        ):
            raise IndexError("subset indices out of range")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.dataset[int(self.indices[index])]

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """Shape of a single image, ``(C, H, W)``."""
        return self.dataset.image_shape

    def class_counts(self, num_classes: Optional[int] = None) -> np.ndarray:
        """Histogram of labels of the subset."""
        labels = self.dataset.labels[self.indices]
        num_classes = num_classes or self.dataset.num_classes
        return np.bincount(labels, minlength=num_classes)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize the subset as ``(images, labels)`` arrays."""
        return self.dataset.images[self.indices], self.dataset.labels[self.indices]


class DataLoader:
    """Mini-batch iterator over a dataset.

    Iteration yields ``(images, labels)`` numpy array pairs.  Shuffling uses
    the supplied :class:`numpy.random.Generator` so that experiments are
    reproducible end to end.
    """

    def __init__(
        self,
        dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng or np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        images, labels = self.dataset.arrays()
        order = np.arange(len(labels))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield images[batch], labels[batch]


def train_test_split(
    dataset: ArrayDataset, test_fraction: float, rng: np.random.Generator
) -> Tuple[Subset, Subset]:
    """Randomly split a dataset into train and test subsets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    order = rng.permutation(len(dataset))
    cut = int(round(len(dataset) * (1.0 - test_fraction)))
    return dataset.subset(order[:cut]), dataset.subset(order[cut:])
