"""Client data partitioning strategies.

The paper assigns training data to clients either i.i.d. or according to a
Dirichlet distribution whose concentration parameter β controls the degree of
label heterogeneity (β = 0.1 highly heterogeneous, β = 0.9 close to uniform).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .dataset import ArrayDataset, Subset

__all__ = [
    "Partitioner",
    "IidPartitioner",
    "DirichletPartitioner",
    "LabelSkewPartitioner",
    "partition_dataset",
]


class Partitioner:
    """Base class: splits a dataset into per-client index lists."""

    def partition(
        self, dataset: ArrayDataset, num_clients: int, rng: np.random.Generator
    ) -> List[np.ndarray]:
        """Return a list of ``num_clients`` index arrays covering the dataset."""
        raise NotImplementedError

    def split(
        self, dataset: ArrayDataset, num_clients: int, rng: np.random.Generator
    ) -> List[Subset]:
        """Partition and wrap each shard as a :class:`Subset`."""
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        indices = self.partition(dataset, num_clients, rng)
        if len(indices) != num_clients:
            raise RuntimeError("partitioner returned the wrong number of shards")
        return [dataset.subset(idx) for idx in indices]


class IidPartitioner(Partitioner):
    """Uniformly random, equally sized shards."""

    def partition(
        self, dataset: ArrayDataset, num_clients: int, rng: np.random.Generator
    ) -> List[np.ndarray]:
        order = rng.permutation(len(dataset))
        return [np.sort(chunk) for chunk in np.array_split(order, num_clients)]


class DirichletPartitioner(Partitioner):
    """Label-heterogeneous shards drawn from a Dirichlet distribution.

    For every class, the class's samples are distributed over clients
    according to proportions drawn from ``Dirichlet(beta * 1)``.  Smaller
    ``beta`` concentrates each class on few clients (more heterogeneity).

    Parameters
    ----------
    beta:
        Dirichlet concentration parameter; the paper uses 0.1, 0.5 and 0.9.
    min_samples_per_client:
        Re-sample the allocation until every client owns at least this many
        samples, which avoids degenerate empty shards in small-scale runs.
    """

    def __init__(self, beta: float, min_samples_per_client: int = 2, max_retries: int = 100) -> None:
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.beta = beta
        self.min_samples_per_client = min_samples_per_client
        self.max_retries = max_retries

    def partition(
        self, dataset: ArrayDataset, num_clients: int, rng: np.random.Generator
    ) -> List[np.ndarray]:
        labels = dataset.labels
        num_classes = int(labels.max()) + 1
        for _ in range(self.max_retries):
            client_indices: List[List[int]] = [[] for _ in range(num_clients)]
            for cls in range(num_classes):
                cls_indices = np.flatnonzero(labels == cls)
                rng.shuffle(cls_indices)
                proportions = rng.dirichlet(np.full(num_clients, self.beta))
                # Convert proportions to split points over this class's samples.
                cuts = (np.cumsum(proportions)[:-1] * len(cls_indices)).astype(int)
                for client, chunk in enumerate(np.split(cls_indices, cuts)):
                    client_indices[client].extend(chunk.tolist())
            sizes = [len(chunk) for chunk in client_indices]
            if min(sizes) >= self.min_samples_per_client:
                return [np.sort(np.asarray(chunk, dtype=np.int64)) for chunk in client_indices]
        # Fall back to topping up the smallest shards from the largest ones.
        return self._rebalance(client_indices, num_clients)

    def _rebalance(
        self, client_indices: List[List[int]], num_clients: int
    ) -> List[np.ndarray]:
        """Move samples from the largest shards to shards below the minimum."""
        shards = [list(chunk) for chunk in client_indices]
        for client in range(num_clients):
            while len(shards[client]) < self.min_samples_per_client:
                donor = max(range(num_clients), key=lambda c: len(shards[c]))
                if donor == client or len(shards[donor]) <= self.min_samples_per_client:
                    break
                shards[client].append(shards[donor].pop())
        return [np.sort(np.asarray(chunk, dtype=np.int64)) for chunk in shards]


class LabelSkewPartitioner(Partitioner):
    """Each client only holds samples from ``classes_per_client`` classes.

    Included as an additional heterogeneity model (label-skew in the related
    work discussion); not used in the main reproduction tables.
    """

    def __init__(self, classes_per_client: int = 2) -> None:
        if classes_per_client < 1:
            raise ValueError("classes_per_client must be at least 1")
        self.classes_per_client = classes_per_client

    def partition(
        self, dataset: ArrayDataset, num_clients: int, rng: np.random.Generator
    ) -> List[np.ndarray]:
        labels = dataset.labels
        num_classes = int(labels.max()) + 1
        per_class = {cls: list(np.flatnonzero(labels == cls)) for cls in range(num_classes)}
        for indices in per_class.values():
            rng.shuffle(indices)
        assignments: List[List[int]] = [[] for _ in range(num_clients)]
        client_classes = [
            rng.choice(num_classes, size=min(self.classes_per_client, num_classes), replace=False)
            for _ in range(num_clients)
        ]
        # Count how many clients want each class, then split that class evenly.
        demand = np.zeros(num_classes, dtype=np.int64)
        for classes in client_classes:
            for cls in classes:
                demand[cls] += 1
        cursor = {cls: 0 for cls in range(num_classes)}
        for client, classes in enumerate(client_classes):
            for cls in classes:
                share = len(per_class[cls]) // max(demand[cls], 1)
                start = cursor[cls]
                assignments[client].extend(per_class[cls][start : start + share])
                cursor[cls] += share
        return [np.sort(np.asarray(chunk, dtype=np.int64)) for chunk in assignments]


def partition_dataset(
    dataset: ArrayDataset,
    num_clients: int,
    beta: Optional[float] = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> List[Subset]:
    """Convenience wrapper: Dirichlet split for finite ``beta``, i.i.d. otherwise.

    Passing ``beta=None`` produces the i.i.d. split used in the REFD
    evaluation (Fig. 9).
    """
    rng = rng or np.random.default_rng()
    partitioner: Partitioner
    if beta is None:
        partitioner = IidPartitioner()
    else:
        partitioner = DirichletPartitioner(beta=beta)
    return partitioner.split(dataset, num_clients, rng)
