"""Procedurally generated stand-ins for Fashion-MNIST, CIFAR-10 and SVHN.

The paper evaluates on three natural-image benchmarks.  This environment has
no network access, so we substitute *synthetic* image-classification tasks
with the same tensor shapes and class structure:

* each class has a deterministic prototype built from an oriented sinusoidal
  grating plus a class-specific Gaussian blob;
* individual samples perturb the prototype with random phase, spatial jitter,
  per-sample contrast and additive Gaussian noise;
* the SVHN stand-in uses a mildly imbalanced class distribution, matching the
  description in the paper.

These datasets are learnable by the small CNNs in :mod:`repro.models` (which
is all the experiments need: the metrics are *relative* accuracy degradation
and update-filtering rates), and their difficulty can be controlled through
the noise level.  See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .dataset import ArrayDataset

__all__ = [
    "SyntheticImageSpec",
    "SyntheticImageTask",
    "make_synthetic_task",
    "fashion_mnist_like",
    "cifar10_like",
    "svhn_like",
    "DATASET_FACTORIES",
    "load_dataset",
]


@dataclass(frozen=True)
class SyntheticImageSpec:
    """Configuration of a synthetic image-classification task."""

    name: str
    channels: int
    image_size: int
    num_classes: int = 10
    noise_std: float = 0.25
    jitter: int = 2
    class_imbalance: float = 0.0
    """Zero means balanced classes; larger values skew towards low class ids."""

    def __post_init__(self) -> None:
        if self.channels not in (1, 3):
            raise ValueError("only 1- or 3-channel images are supported")
        if self.image_size < 8:
            raise ValueError("image_size must be at least 8")
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")


@dataclass
class SyntheticImageTask:
    """A generated train/test pair plus the spec that produced it."""

    spec: SyntheticImageSpec
    train: ArrayDataset
    test: ArrayDataset

    @property
    def num_classes(self) -> int:
        """Number of classes of the task."""
        return self.spec.num_classes

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """Shape ``(C, H, W)`` of a single image."""
        return (self.spec.channels, self.spec.image_size, self.spec.image_size)


def _class_prototype(spec: SyntheticImageSpec, label: int) -> np.ndarray:
    """Deterministic prototype image for one class.

    Combines an oriented grating (frequency and orientation depend on the
    class) with a Gaussian blob whose position rotates around the image
    centre with the class index.  The construction guarantees that the
    prototypes of different classes are far apart in pixel space while
    remaining smooth enough for a small CNN to learn quickly.
    """
    size = spec.image_size
    coords = np.linspace(-1.0, 1.0, size)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")

    orientation = math.pi * label / spec.num_classes
    frequency = 1.5 + (label % 5)
    phase = 2.0 * math.pi * label / spec.num_classes
    grating = np.sin(
        2.0 * math.pi * frequency * (xx * math.cos(orientation) + yy * math.sin(orientation))
        + phase
    )

    angle = 2.0 * math.pi * label / spec.num_classes
    cx, cy = 0.5 * math.cos(angle), 0.5 * math.sin(angle)
    blob = np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2) / 0.08))

    base = 0.6 * grating + 1.2 * blob
    channels = []
    for channel in range(spec.channels):
        channel_phase = 2.0 * math.pi * channel / max(spec.channels, 1)
        modulation = 1.0 + 0.3 * math.cos(phase + channel_phase)
        channels.append(base * modulation)
    prototype = np.stack(channels, axis=0)
    return prototype.astype(np.float32)


def _sample_class_counts(
    spec: SyntheticImageSpec, total: int, rng: np.random.Generator
) -> np.ndarray:
    """Number of samples to draw per class (balanced or skewed)."""
    if spec.class_imbalance <= 0:
        counts = np.full(spec.num_classes, total // spec.num_classes, dtype=np.int64)
        counts[: total - counts.sum()] += 1
        return counts
    weights = np.exp(-spec.class_imbalance * np.arange(spec.num_classes))
    weights = weights / weights.sum()
    counts = np.floor(weights * total).astype(np.int64)
    counts = np.maximum(counts, 1)
    while counts.sum() > total:
        counts[counts.argmax()] -= 1
    while counts.sum() < total:
        counts[rng.integers(0, spec.num_classes)] += 1
    return counts


def _generate_split(
    spec: SyntheticImageSpec, total: int, rng: np.random.Generator
) -> ArrayDataset:
    """Generate one split (train or test) of ``total`` samples."""
    prototypes = np.stack(
        [_class_prototype(spec, label) for label in range(spec.num_classes)]
    )
    counts = _sample_class_counts(spec, total, rng)
    images = np.empty(
        (total, spec.channels, spec.image_size, spec.image_size), dtype=np.float32
    )
    labels = np.empty(total, dtype=np.int64)

    cursor = 0
    for label, count in enumerate(counts):
        for _ in range(count):
            sample = prototypes[label].copy()
            if spec.jitter > 0:
                shift_y = int(rng.integers(-spec.jitter, spec.jitter + 1))
                shift_x = int(rng.integers(-spec.jitter, spec.jitter + 1))
                sample = np.roll(sample, (shift_y, shift_x), axis=(1, 2))
            contrast = 1.0 + 0.2 * rng.standard_normal()
            brightness = 0.1 * rng.standard_normal()
            sample = contrast * sample + brightness
            sample = sample + spec.noise_std * rng.standard_normal(sample.shape)
            images[cursor] = sample.astype(np.float32)
            labels[cursor] = label
            cursor += 1

    order = rng.permutation(total)
    images, labels = images[order], labels[order]
    # Normalize to zero mean / unit variance per dataset, mirroring the usual
    # torchvision transforms.
    mean = images.mean()
    std = images.std() + 1e-8
    images = (images - mean) / std
    return ArrayDataset(images, labels)


def make_synthetic_task(
    spec: SyntheticImageSpec,
    train_size: int,
    test_size: int,
    seed: int = 0,
) -> SyntheticImageTask:
    """Generate a full train/test task from a spec."""
    if train_size <= 0 or test_size <= 0:
        raise ValueError("train_size and test_size must be positive")
    rng = np.random.default_rng(seed)
    train = _generate_split(spec, train_size, rng)
    test = _generate_split(spec, test_size, rng)
    return SyntheticImageTask(spec=spec, train=train, test=test)


def fashion_mnist_like(
    train_size: int = 6000,
    test_size: int = 1000,
    seed: int = 0,
    image_size: int = 28,
) -> SyntheticImageTask:
    """Synthetic stand-in for Fashion-MNIST: 1×28×28 grayscale, 10 balanced classes.

    The paper trains on 10% of the original 60 000 images, i.e. 6 000; the
    defaults match that scale and can be reduced further for fast benchmarks.
    """
    spec = SyntheticImageSpec(
        name="fashion-mnist", channels=1, image_size=image_size, noise_std=0.30
    )
    return make_synthetic_task(spec, train_size, test_size, seed)


def cifar10_like(
    train_size: int = 5000,
    test_size: int = 1000,
    seed: int = 1,
    image_size: int = 32,
) -> SyntheticImageTask:
    """Synthetic stand-in for CIFAR-10: 3×32×32 RGB, 10 balanced classes.

    Uses a higher noise level than the Fashion-MNIST stand-in so that the
    relative difficulty ordering of the paper (CIFAR-10 harder, more diverse
    updates) is preserved.
    """
    spec = SyntheticImageSpec(
        name="cifar-10", channels=3, image_size=image_size, noise_std=0.60, jitter=3
    )
    return make_synthetic_task(spec, train_size, test_size, seed)


def svhn_like(
    train_size: int = 7325,
    test_size: int = 1300,
    seed: int = 2,
    image_size: int = 32,
) -> SyntheticImageTask:
    """Synthetic stand-in for SVHN: 3×32×32 RGB, 10 slightly imbalanced classes."""
    spec = SyntheticImageSpec(
        name="svhn",
        channels=3,
        image_size=image_size,
        noise_std=0.45,
        jitter=2,
        class_imbalance=0.15,
    )
    return make_synthetic_task(spec, train_size, test_size, seed)


DATASET_FACTORIES: Dict[str, callable] = {
    "fashion-mnist": fashion_mnist_like,
    "cifar-10": cifar10_like,
    "svhn": svhn_like,
}


def load_dataset(
    name: str,
    train_size: Optional[int] = None,
    test_size: Optional[int] = None,
    seed: int = 0,
    image_size: Optional[int] = None,
) -> SyntheticImageTask:
    """Load one of the three benchmark stand-ins by name.

    Any of ``train_size``, ``test_size`` and ``image_size`` may be overridden
    to run scaled-down experiments.
    """
    key = name.lower()
    if key not in DATASET_FACTORIES:
        raise KeyError(f"unknown dataset '{name}'; choose from {sorted(DATASET_FACTORIES)}")
    factory = DATASET_FACTORIES[key]
    kwargs = {"seed": seed}
    if train_size is not None:
        kwargs["train_size"] = train_size
    if test_size is not None:
        kwargs["test_size"] = test_size
    if image_size is not None:
        kwargs["image_size"] = image_size
    return factory(**kwargs)
