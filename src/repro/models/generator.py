"""Synthetic-data networks used by the two DFA attack variants.

* :class:`TCNNGenerator` is the lightweight transpose-convolutional
  generator of DFA-G (two transposed convolutional layers followed by one
  convolutional layer, following the WGAN architecture cited by the paper).
* :class:`FilterNet` is the single convolutional "filter layer" of DFA-R
  that maps a fixed random dummy image to a malicious synthetic image of the
  classifier's input size.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = ["TCNNGenerator", "FilterNet"]


class TCNNGenerator(nn.Module):
    """Transpose-convolutional generator ``G: Z -> images`` (DFA-G).

    The noise vector is first projected to a low-resolution feature map,
    then upsampled twice by transposed convolutions (×4 total) and finally
    refined by a convolution with ``tanh`` output.

    Parameters
    ----------
    noise_dim:
        Dimensionality of the Gaussian noise vector ``Z``.
    out_channels, image_size:
        Shape of the generated images; ``image_size`` must be divisible by 4.
    base_width:
        Number of feature maps of the innermost layer.
    """

    def __init__(
        self,
        noise_dim: int = 64,
        out_channels: int = 1,
        image_size: int = 28,
        base_width: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if image_size % 4 != 0:
            raise ValueError("image_size must be divisible by 4 for the TCNN generator")
        rng = rng or np.random.default_rng()
        self.noise_dim = noise_dim
        self.out_channels = out_channels
        self.image_size = image_size
        self.base_width = base_width
        self._seed_size = image_size // 4

        self.project = nn.Linear(noise_dim, 2 * base_width * self._seed_size ** 2, rng=rng)
        self.deconv1 = nn.ConvTranspose2d(2 * base_width, base_width, 4, stride=2, padding=1, rng=rng)
        self.deconv2 = nn.ConvTranspose2d(base_width, base_width, 4, stride=2, padding=1, rng=rng)
        self.refine = nn.Conv2d(base_width, out_channels, 3, stride=1, padding=1, rng=rng)

    def forward(self, noise: Tensor) -> Tensor:
        batch = noise.shape[0]
        x = self.project(noise).relu()
        x = x.reshape(batch, 2 * self.base_width, self._seed_size, self._seed_size)
        x = self.deconv1(x).relu()
        x = self.deconv2(x).relu()
        return self.refine(x).tanh()

    def sample_noise(self, batch: int, rng: np.random.Generator) -> np.ndarray:
        """Draw a batch of Gaussian noise vectors for the generator input."""
        return rng.standard_normal((batch, self.noise_dim)).astype(np.float32)


class FilterNet(nn.Module):
    """The DFA-R "filter layer": one convolution from dummy image to image B.

    Given the target image shape ``(channels, b, b)``, kernel size ``J``,
    stride ``St`` and padding ``P``, the dummy image A has spatial size
    ``a = (b - 1) * St + J - 2P`` so that the convolution output exactly
    matches the classifier's input size (the standard convolution arithmetic
    corresponding to Eq. (a, b) in Sec. III-C of the paper).
    """

    def __init__(
        self,
        channels: int,
        image_size: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.channels = channels
        self.image_size = image_size
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dummy_size = (image_size - 1) * stride + kernel_size - 2 * padding
        if self.dummy_size <= 0:
            raise ValueError("invalid filter geometry: dummy image would be empty")
        produced = F.conv_output_size(self.dummy_size, kernel_size, stride, padding)
        if produced != image_size:
            raise ValueError(
                f"filter geometry mismatch: conv of a {self.dummy_size}-pixel dummy image "
                f"yields {produced} pixels instead of {image_size}"
            )
        self.filter = nn.Conv2d(
            channels, channels, kernel_size, stride=stride, padding=padding, rng=rng
        )

    def dummy_shape(self) -> Tuple[int, int, int]:
        """Shape ``(C, a, a)`` of the random dummy image A."""
        return (self.channels, self.dummy_size, self.dummy_size)

    def sample_dummy(self, batch: int, rng: np.random.Generator) -> np.ndarray:
        """Draw a batch of uniform-random dummy images A."""
        shape = (batch, self.channels, self.dummy_size, self.dummy_size)
        return rng.uniform(0.0, 1.0, size=shape).astype(np.float32)

    def forward(self, dummy: Tensor) -> Tensor:
        return self.filter(dummy)
