"""Classifier architectures used by the federated learning experiments.

The paper uses "representative neural networks with 2 (for Fashion-MNIST)
and 6 (Cifar-10 and SVHN) convolutional layers connected with 1 and 2
densely-connected layers".  :class:`FashionCNN` and :class:`CifarCNN` follow
that description; :class:`SmallCNN` and :class:`MLP` are lighter variants
used by the scaled-down benchmark harness and the unit tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = ["FashionCNN", "CifarCNN", "SmallCNN", "MLP"]


def _conv_out(size: int, layers: Tuple[Tuple[int, int, int], ...]) -> int:
    """Spatial size after a stack of ``(kernel, stride, padding)`` convolutions."""
    for kernel, stride, padding in layers:
        size = F.conv_output_size(size, kernel, stride, padding)
    return size


class FashionCNN(nn.Module):
    """Two convolutional layers plus one dense layer (Fashion-MNIST model)."""

    def __init__(
        self,
        in_channels: int = 1,
        image_size: int = 28,
        num_classes: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        self.conv1 = nn.Conv2d(in_channels, 16, kernel_size=3, stride=2, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(16, 32, kernel_size=3, stride=2, padding=1, rng=rng)
        spatial = _conv_out(image_size, ((3, 2, 1), (3, 2, 1)))
        self.fc = nn.Linear(32 * spatial * spatial, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        return self.fc(x.flatten_batch())


class CifarCNN(nn.Module):
    """Six convolutional layers plus two dense layers (CIFAR-10 / SVHN model)."""

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 32,
        num_classes: int = 10,
        width: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        self.conv1 = nn.Conv2d(in_channels, width, 3, stride=1, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(width, width, 3, stride=2, padding=1, rng=rng)
        self.conv3 = nn.Conv2d(width, 2 * width, 3, stride=1, padding=1, rng=rng)
        self.conv4 = nn.Conv2d(2 * width, 2 * width, 3, stride=2, padding=1, rng=rng)
        self.conv5 = nn.Conv2d(2 * width, 4 * width, 3, stride=1, padding=1, rng=rng)
        self.conv6 = nn.Conv2d(4 * width, 4 * width, 3, stride=2, padding=1, rng=rng)
        spatial = _conv_out(
            image_size, ((3, 1, 1), (3, 2, 1), (3, 1, 1), (3, 2, 1), (3, 1, 1), (3, 2, 1))
        )
        self.fc1 = nn.Linear(4 * width * spatial * spatial, 4 * width, rng=rng)
        self.fc2 = nn.Linear(4 * width, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        x = self.conv3(x).relu()
        x = self.conv4(x).relu()
        x = self.conv5(x).relu()
        x = self.conv6(x).relu()
        x = self.fc1(x.flatten_batch()).relu()
        return self.fc2(x)


class SmallCNN(nn.Module):
    """Compact two-convolution network for scaled-down benchmark runs."""

    def __init__(
        self,
        in_channels: int = 1,
        image_size: int = 16,
        num_classes: int = 10,
        width: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        self.conv1 = nn.Conv2d(in_channels, width, 3, stride=2, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(width, 2 * width, 3, stride=2, padding=1, rng=rng)
        spatial = _conv_out(image_size, ((3, 2, 1), (3, 2, 1)))
        self.fc = nn.Linear(2 * width * spatial * spatial, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        return self.fc(x.flatten_batch())


class MLP(nn.Module):
    """Fully-connected baseline classifier (fastest option for unit tests)."""

    def __init__(
        self,
        in_channels: int = 1,
        image_size: int = 16,
        num_classes: int = 10,
        hidden: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        in_features = in_channels * image_size * image_size
        self.fc1 = nn.Linear(in_features, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x.flatten_batch()
        return self.fc2(self.fc1(x).relu())
