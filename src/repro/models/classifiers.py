"""Classifier architectures used by the federated learning experiments.

The paper uses "representative neural networks with 2 (for Fashion-MNIST)
and 6 (Cifar-10 and SVHN) convolutional layers connected with 1 and 2
densely-connected layers".  :class:`FashionCNN` and :class:`CifarCNN` follow
that description; :class:`SmallCNN` and :class:`MLP` are lighter variants
used by the scaled-down benchmark harness and the unit tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.recurrent import GRU
from ..nn.tensor import Tensor

__all__ = ["FashionCNN", "CifarCNN", "SmallCNN", "MLP", "GRUClassifier"]


def _conv_out(size: int, layers: Tuple[Tuple[int, int, int], ...]) -> int:
    """Spatial size after a stack of ``(kernel, stride, padding)`` convolutions."""
    for kernel, stride, padding in layers:
        size = F.conv_output_size(size, kernel, stride, padding)
    return size


class FashionCNN(nn.Module):
    """Two convolutional layers plus one dense layer (Fashion-MNIST model)."""

    def __init__(
        self,
        in_channels: int = 1,
        image_size: int = 28,
        num_classes: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        self.conv1 = nn.Conv2d(in_channels, 16, kernel_size=3, stride=2, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(16, 32, kernel_size=3, stride=2, padding=1, rng=rng)
        spatial = _conv_out(image_size, ((3, 2, 1), (3, 2, 1)))
        self.fc = nn.Linear(32 * spatial * spatial, num_classes, rng=rng)
        # Structural identity for the trace cache: seed-independent, so
        # every client instance of this architecture shares one tape.
        self.trace_signature = ("fashion-cnn", in_channels, image_size, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        return self.fc(x.flatten_batch())


class CifarCNN(nn.Module):
    """Six convolutional layers plus two dense layers (CIFAR-10 / SVHN model)."""

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 32,
        num_classes: int = 10,
        width: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        self.conv1 = nn.Conv2d(in_channels, width, 3, stride=1, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(width, width, 3, stride=2, padding=1, rng=rng)
        self.conv3 = nn.Conv2d(width, 2 * width, 3, stride=1, padding=1, rng=rng)
        self.conv4 = nn.Conv2d(2 * width, 2 * width, 3, stride=2, padding=1, rng=rng)
        self.conv5 = nn.Conv2d(2 * width, 4 * width, 3, stride=1, padding=1, rng=rng)
        self.conv6 = nn.Conv2d(4 * width, 4 * width, 3, stride=2, padding=1, rng=rng)
        spatial = _conv_out(
            image_size, ((3, 1, 1), (3, 2, 1), (3, 1, 1), (3, 2, 1), (3, 1, 1), (3, 2, 1))
        )
        self.fc1 = nn.Linear(4 * width * spatial * spatial, 4 * width, rng=rng)
        self.fc2 = nn.Linear(4 * width, num_classes, rng=rng)
        self.trace_signature = ("cifar-cnn", in_channels, image_size, num_classes, width)

    def forward(self, x: Tensor) -> Tensor:
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        x = self.conv3(x).relu()
        x = self.conv4(x).relu()
        x = self.conv5(x).relu()
        x = self.conv6(x).relu()
        x = self.fc1(x.flatten_batch()).relu()
        return self.fc2(x)


class SmallCNN(nn.Module):
    """Compact two-convolution network for scaled-down benchmark runs."""

    def __init__(
        self,
        in_channels: int = 1,
        image_size: int = 16,
        num_classes: int = 10,
        width: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        self.conv1 = nn.Conv2d(in_channels, width, 3, stride=2, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(width, 2 * width, 3, stride=2, padding=1, rng=rng)
        spatial = _conv_out(image_size, ((3, 2, 1), (3, 2, 1)))
        self.fc = nn.Linear(2 * width * spatial * spatial, num_classes, rng=rng)
        self.trace_signature = ("small-cnn", in_channels, image_size, num_classes, width)

    def forward(self, x: Tensor) -> Tensor:
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        return self.fc(x.flatten_batch())


class MLP(nn.Module):
    """Fully-connected baseline classifier (fastest option for unit tests)."""

    def __init__(
        self,
        in_channels: int = 1,
        image_size: int = 16,
        num_classes: int = 10,
        hidden: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        in_features = in_channels * image_size * image_size
        self.fc1 = nn.Linear(in_features, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, num_classes, rng=rng)
        self.trace_signature = ("mlp", in_channels, image_size, num_classes, hidden)

    def forward(self, x: Tensor) -> Tensor:
        x = x.flatten_batch()
        return self.fc2(self.fc1(x).relu())


class GRUClassifier(nn.Module):
    """Recurrent classifier reading images as row sequences.

    Each of the ``image_size`` pixel rows (``in_channels * image_size``
    features after folding channels into the row) is one GRU time step;
    the final hidden state feeds a dense head.  This is the sequence
    instantiation of the paper's Sec. III-C/D sketch on the same image
    datasets, and the model that exercises :mod:`repro.nn.recurrent`
    through training, tracing and replay.  The GRU runs with
    ``return_sequences=False``: only the last state is needed, which
    keeps the graph (and the recorded tape) linear in the sequence
    length.
    """

    def __init__(
        self,
        in_channels: int = 1,
        image_size: int = 28,
        num_classes: int = 10,
        hidden: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        self.hidden = hidden
        self.gru = GRU(
            in_channels * image_size, hidden, rng=rng, return_sequences=False
        )
        self.head = nn.Linear(hidden, num_classes, rng=rng)
        self.trace_signature = ("gru", in_channels, image_size, num_classes, hidden)

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        # (N, C, H, W) -> (N, H, C*W): scan top-to-bottom over pixel rows.
        rows = x.transpose((0, 2, 1, 3)).reshape(
            batch, self.image_size, self.in_channels * self.image_size
        )
        _, state = self.gru(rows)
        return self.head(state)
