"""Neural-network architectures for classifiers and synthetic-data generators."""

from .classifiers import MLP, CifarCNN, FashionCNN, SmallCNN
from .factory import (
    CLASSIFIER_REGISTRY,
    ClassifierFactory,
    build_classifier,
    build_classifier_for_task,
    build_filter_for_task,
    build_generator_for_task,
    default_architecture_for_dataset,
)
from .generator import FilterNet, TCNNGenerator

__all__ = [
    "FashionCNN",
    "CifarCNN",
    "SmallCNN",
    "MLP",
    "TCNNGenerator",
    "FilterNet",
    "CLASSIFIER_REGISTRY",
    "ClassifierFactory",
    "build_classifier",
    "build_classifier_for_task",
    "build_generator_for_task",
    "build_filter_for_task",
    "default_architecture_for_dataset",
]
