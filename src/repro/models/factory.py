"""Model factories keyed by dataset / architecture name.

The federated simulation needs to build fresh, identically-shaped model
instances repeatedly (one per client per round plus the server copy), so
everything goes through :func:`build_classifier` / :func:`build_generator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..data.synthetic import SyntheticImageTask
from ..nn.modules import Module
from .classifiers import MLP, CifarCNN, FashionCNN, GRUClassifier, SmallCNN
from .generator import FilterNet, TCNNGenerator

__all__ = [
    "CLASSIFIER_REGISTRY",
    "ClassifierFactory",
    "build_classifier",
    "build_classifier_for_task",
    "build_generator_for_task",
    "build_filter_for_task",
    "default_architecture_for_dataset",
]

CLASSIFIER_REGISTRY: Dict[str, Callable[..., Module]] = {
    "fashion-cnn": FashionCNN,
    "cifar-cnn": CifarCNN,
    "small-cnn": SmallCNN,
    "mlp": MLP,
    "gru": GRUClassifier,
}

_DATASET_DEFAULTS = {
    "fashion-mnist": "fashion-cnn",
    "cifar-10": "cifar-cnn",
    "svhn": "cifar-cnn",
}


def default_architecture_for_dataset(dataset_name: str) -> str:
    """Architecture the paper uses for a given dataset (2-conv vs 6-conv CNN)."""
    return _DATASET_DEFAULTS.get(dataset_name.lower(), "small-cnn")


def build_classifier(
    architecture: str,
    in_channels: int,
    image_size: int,
    num_classes: int,
    seed: Optional[int] = None,
) -> Module:
    """Instantiate a classifier by architecture name with a seeded init."""
    key = architecture.lower()
    if key not in CLASSIFIER_REGISTRY:
        raise KeyError(
            f"unknown architecture '{architecture}'; choose from {sorted(CLASSIFIER_REGISTRY)}"
        )
    rng = np.random.default_rng(seed)
    return CLASSIFIER_REGISTRY[key](
        in_channels=in_channels,
        image_size=image_size,
        num_classes=num_classes,
        rng=rng,
    )


@dataclass(frozen=True)
class ClassifierFactory:
    """Picklable zero-argument model factory.

    The parallel client executor ships the factory to worker processes, where
    closures over a task object cannot be pickled; this dataclass carries the
    same information as plain fields.  Calling it is equivalent to
    :func:`build_classifier` with the stored arguments, so repeated calls
    build identically-initialised models (the seed pins the init RNG).
    """

    architecture: str
    in_channels: int
    image_size: int
    num_classes: int
    seed: Optional[int] = None

    def __call__(self) -> Module:
        return build_classifier(
            self.architecture,
            self.in_channels,
            self.image_size,
            self.num_classes,
            seed=self.seed,
        )

    @property
    def trace_signature(self) -> tuple:
        """Structural identity of the models this factory builds.

        Matches the ``trace_signature`` the built model declares (it is
        seed-independent), letting callers key trace caches or dispatch
        decisions without instantiating a model.
        """
        signature = getattr(self(), "trace_signature", None)
        if signature is None:
            signature = (
                self.architecture,
                self.in_channels,
                self.image_size,
                self.num_classes,
            )
        return signature

    @classmethod
    def for_task(
        cls,
        task: SyntheticImageTask,
        architecture: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> "ClassifierFactory":
        """Factory matching a dataset task's shapes (cf. ``build_classifier_for_task``)."""
        architecture = architecture or default_architecture_for_dataset(task.spec.name)
        channels, size, _ = task.image_shape
        return cls(
            architecture=architecture,
            in_channels=channels,
            image_size=size,
            num_classes=task.num_classes,
            seed=seed,
        )


def build_classifier_for_task(
    task: SyntheticImageTask,
    architecture: Optional[str] = None,
    seed: Optional[int] = None,
) -> Module:
    """Instantiate the classifier matching a dataset task's shapes."""
    architecture = architecture or default_architecture_for_dataset(task.spec.name)
    channels, size, _ = task.image_shape
    return build_classifier(architecture, channels, size, task.num_classes, seed=seed)


def build_generator_for_task(
    task: SyntheticImageTask,
    noise_dim: int = 64,
    base_width: int = 16,
    seed: Optional[int] = None,
) -> TCNNGenerator:
    """Instantiate the DFA-G generator for a dataset task's image shape."""
    channels, size, _ = task.image_shape
    rng = np.random.default_rng(seed)
    return TCNNGenerator(
        noise_dim=noise_dim,
        out_channels=channels,
        image_size=size,
        base_width=base_width,
        rng=rng,
    )


def build_filter_for_task(
    task: SyntheticImageTask,
    kernel_size: int = 3,
    seed: Optional[int] = None,
) -> FilterNet:
    """Instantiate the DFA-R filter network for a dataset task's image shape."""
    channels, size, _ = task.image_shape
    rng = np.random.default_rng(seed)
    return FilterNet(channels=channels, image_size=size, kernel_size=kernel_size, rng=rng)
