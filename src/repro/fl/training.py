"""Local training and evaluation loops shared by clients, attacks and metrics."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..data.dataset import DataLoader
from ..nn import functional as F
from ..nn import trace as nn_trace
from ..nn.modules import Module
from ..nn.optim import SGD
from ..nn.tensor import Tensor, no_grad
from .types import LocalTrainingConfig

__all__ = ["train_on_arrays", "train_local_model", "evaluate_model", "predict_proba"]


def train_on_arrays(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
    extra_loss: Optional[callable] = None,
) -> List[float]:
    """Train ``model`` in place on an array dataset and return per-epoch losses.

    Parameters
    ----------
    extra_loss:
        Optional callable ``extra_loss(model) -> Tensor`` added to the
        cross-entropy loss of every batch.  The DFA attacks use this hook for
        their distance-based regularization term.

    When ``config.trace`` is ``"replay"`` (or ``"auto"``, which resolves
    to replay here when a :class:`DispatchPolicy` has not already decided)
    and the model declares a ``trace_signature``, each distinct batch
    shape runs through the recorded-tape engine of :mod:`repro.nn.trace`:
    the first step records (eagerly — so it is also a normal step) and
    later steps replay a preallocated buffer plan, bit-identical to the
    eager loop.  ``extra_loss`` models, shape changes and untraceable ops
    all fall back to eager per step, never erroring.
    """
    model.train()
    optimizer = SGD(
        model.parameters(),
        lr=config.learning_rate,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    session = None
    if extra_loss is None and getattr(config, "trace", "auto") != "eager":
        session = nn_trace.session_for(model)
    num_samples = images.shape[0]
    epoch_losses: List[float] = []
    for _ in range(config.local_epochs):
        order = rng.permutation(num_samples)
        batch_losses: List[float] = []
        for start in range(0, num_samples, config.batch_size):
            batch = order[start : start + config.batch_size]
            optimizer.zero_grad()
            loss_value: Optional[float] = None
            if session is not None:
                loss_value = session.step(images[batch], labels[batch])
            if loss_value is None:
                logits = model(Tensor(images[batch]))
                loss = F.cross_entropy(logits, labels[batch])
                if extra_loss is not None:
                    loss = loss + extra_loss(model)
                loss.backward()
                loss_value = float(loss.item())
            optimizer.step()
            batch_losses.append(loss_value)
        epoch_losses.append(float(np.mean(batch_losses)))
    return epoch_losses


def train_local_model(
    model: Module,
    dataset,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
) -> List[float]:
    """Train ``model`` on a dataset object that exposes ``arrays()``."""
    images, labels = dataset.arrays()
    return train_on_arrays(model, images, labels, config, rng)


def evaluate_model(model: Module, dataset, batch_size: int = 128) -> Tuple[float, float]:
    """Return ``(accuracy, mean cross-entropy loss)`` of ``model`` on a dataset.

    Accuracy and loss are accumulated as running sums — no per-batch Python
    lists are built, and the loss is weighted by batch length exactly once.
    """
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    correct = 0
    total = 0
    loss_sum = 0.0
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(images))
            loss_sum += float(F.cross_entropy(logits, labels).item()) * len(labels)
            predictions = logits.data.argmax(axis=1)
            correct += int((predictions == labels).sum())
            total += len(labels)
    if total == 0:
        return 0.0, 0.0
    return correct / total, loss_sum / total


def predict_proba(
    model: Module,
    images: np.ndarray,
    batch_size: int = 256,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Class-probability predictions of ``model`` for a batch of images.

    Each batch's probabilities are written straight into one output matrix
    (preallocated by the caller via ``out``, or allocated once after the
    first batch reveals the class count) instead of growing a Python list
    and concatenating at the end.
    """
    model.eval()
    num_samples = images.shape[0]
    if out is not None and (out.ndim != 2 or out.shape[0] != num_samples):
        raise ValueError(
            f"out buffer has shape {out.shape}, expected ({num_samples}, num_classes)"
        )
    with no_grad():
        for start in range(0, num_samples, batch_size):
            logits = model(Tensor(images[start : start + batch_size]))
            probs = F.softmax(logits, axis=-1).data
            if out is None:
                out = np.empty((num_samples, probs.shape[1]), dtype=probs.dtype)
            elif out.shape[1] != probs.shape[1]:
                raise ValueError(
                    f"out buffer has {out.shape[1]} columns, model predicts {probs.shape[1]} classes"
                )
            out[start : start + probs.shape[0]] = probs
    if out is None:
        out = np.empty((0, 0), dtype=np.float32)
    return out
