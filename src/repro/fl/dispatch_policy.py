"""Benchmark-calibrated dispatch: one policy object for every fan-out decision.

The executors in :mod:`repro.fl.executor` are *mechanism* — they run client
tasks and registered fan-out calls on a serial/thread/process backend with
bit-identical results.  This module is *policy*: given a call site and a
measured problem size, which backend should the work go to?

``BENCH_hotpath.json`` documents why this cannot be a constant: on small
problems the pooled paths lose (shm round dispatch 0.85x, REFD process
fan-out 0.62x, distance-block fan-out well below 1x at bench scale on the
reference machine) while on large multi-core problems they win.  The
:class:`CostModel` turns the ledger's measurements into per-site crossover
estimates; :class:`DispatchPolicy` applies them per call, records every
decision in a trace (surfaced through ``GridStats``/``--stats-json``), and
supports static pinning for when measurements are beside the point.

Call sites
----------
``"round"``
    The per-round benign-client fan-out (``FederatedSimulation.run_round``).
``"refd"``
    REFD's per-update D-score inference (:mod:`repro.defenses.refd`).
``"distance"``
    Row-block fan-out of the exact float64 distance/cosine plane
    (:mod:`repro.defenses.distances`).
``"grid"``
    Grid cell dispatch (:class:`repro.experiments.grid.GridRunner`).
``"train"``
    The autograd execution mode of client local training — eager per-op
    closures vs the recorded-tape replay of :mod:`repro.nn.trace`.  Unlike
    the other sites this picks an *engine*, not an executor backend:
    :meth:`DispatchPolicy.training_mode` returns ``"replay"`` or
    ``"eager"`` (both bit-identical), trading the one-off recording
    overhead against the per-step replay saving measured by the
    ``trace_record_overhead`` ledger metric.

On top of the per-call decisions the policy owns a :class:`DistanceCache`
that amortises the float64 distance plane across rounds: pairwise values
are keyed by a content hash of the exact row bytes, so unchanged
benign-benign sub-blocks are reused bitwise and any mutated update
invalidates exactly the pairs it participates in — content-hash exact,
never approximate.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .executor import (
    ClientExecutor,
    ParallelExecutor,
    SerialExecutor,
    ThreadedExecutor,
    default_worker_count,
    pooled_fanout_ready,
)

__all__ = [
    "BACKENDS",
    "SITES",
    "TRAIN_MODES",
    "BenchRecord",
    "CostModel",
    "DispatchDecision",
    "DispatchPolicy",
    "DistanceCache",
    "dispatch_for",
]

#: The call sites a policy decides for (see module docstring).
SITES = ("round", "refd", "distance", "grid", "train")

#: The executor backends a decision may pick.
BACKENDS = ("serial", "thread", "process")

#: The autograd engines the ``train`` site may pick (its "backends").
TRAIN_MODES = ("eager", "replay")


@dataclass(frozen=True)
class BenchRecord:
    """One calibration point: a (site, backend) pair timed at a known size.

    ``work`` is the site's scalar work measure (items x parameter dimension
    for model fan-outs, rows x columns x dimension for the distance plane,
    cell count for the grid); ``serial_s`` and ``parallel_s`` are the
    best-of timings of the same problem on the serial baseline and on
    ``backend`` with ``workers`` workers.
    """

    site: str
    backend: str
    items: int
    work: float
    serial_s: float
    parallel_s: float
    workers: int = 2


# Bench geometries of the ledger metrics, used to reconstruct calibration
# records from a legacy-shaped ``BENCH_hotpath.json`` that predates the
# explicit ``dispatch_sites`` section.
_REFD_BENCH_ITEMS = 8
_REFD_BENCH_DIM = 3818  # SmallCNN(in_channels=1, image_size=16, width=8)
_ROUND_BENCH_ITEMS = 8
_ROUND_BENCH_DIM = 20490  # FashionCNN, 28x28 (the _e2e_config model)
_DISTANCE_BENCH_N = 10
_DISTANCE_BENCH_DIM = 100_000
_DISTANCE_BENCH_BLOCKS = 4

#: Proxy bandwidth used to convert the measured shm-vs-inline round overhead
#: into a payload-size crossover (bytes the inline pickle path can move in
#: the time the shared-memory plumbing costs per round).
_SHM_BANDWIDTH_BYTES_PER_S = 1 << 30

#: Calibration measured on the reference machine (1 CPU; the committed
#: ``BENCH_hotpath.json``).  ``CostModel.from_ledger`` overrides these with
#: whatever the local ledger recorded; sites the ledger does not cover fall
#: back to this table.
#: Per-step training costs measured on the reference machine (FashionCNN,
#: batch 32): mean eager step, mean replayed step, and the one-off extra
#: cost of the recording step over a plain eager step.  Overridden by the
#: ``trace_record_overhead`` metric when a local ledger provides one.
_DEFAULT_TRAIN_COSTS = {
    "eager_step_s": 3.8e-3,
    "replay_step_s": 3.0e-3,
    "overhead_s": 9.0e-3,
}

_DEFAULT_LEDGER_RECORDS = (
    BenchRecord(
        site="refd",
        backend="process",
        items=_REFD_BENCH_ITEMS,
        work=float(_REFD_BENCH_ITEMS * _REFD_BENCH_DIM),
        serial_s=0.0121,
        parallel_s=0.0195,
        workers=2,
    ),
    BenchRecord(
        site="round",
        backend="process",
        items=_ROUND_BENCH_ITEMS,
        work=float(_ROUND_BENCH_ITEMS * _ROUND_BENCH_DIM),
        serial_s=0.1037,
        parallel_s=0.1106,
        workers=2,
    ),
    BenchRecord(
        site="distance",
        backend="process",
        items=_DISTANCE_BENCH_BLOCKS,
        work=float(_DISTANCE_BENCH_N * _DISTANCE_BENCH_N * _DISTANCE_BENCH_DIM),
        serial_s=0.0398,
        parallel_s=0.0569,
        workers=2,
    ),
)


class CostModel:
    """Per-site serial/parallel time estimates fitted from bench records.

    The model is deliberately simple — two fitted constants per record:

    * ``tau(site)``: serial seconds per unit of work, from ``serial_s/work``;
    * ``per_item(site, backend)``: fixed dispatch overhead per work item,
      from ``max(parallel_s - serial_s/k, eps) / items`` with
      ``k = min(workers, items)``.

    A pooled backend is chosen only when its estimate beats ``margin`` times
    the serial estimate (serial-biased: ties and near-ties stay serial, which
    is the ROADMAP's "never slower than serial" contract).  With one worker
    the pooled estimate can never beat serial, so the crossover is infinite.
    """

    def __init__(
        self,
        records: Iterable[BenchRecord] = (),
        *,
        margin: float = 0.9,
        shm_min_bytes: int = 32 * 1024 * 1024,
    ) -> None:
        self.margin = float(margin)
        self.shm_min_bytes = int(shm_min_bytes)
        self._tau: Dict[str, float] = {}
        self._per_item: Dict[Tuple[str, str], float] = {}
        self.train_costs: Dict[str, float] = dict(_DEFAULT_TRAIN_COSTS)
        for record in records:
            self.add_record(record)

    def add_record(self, record: BenchRecord) -> None:
        """Fold one calibration record into the model (later records win)."""
        if record.site not in SITES:
            raise ValueError(f"unknown site {record.site!r}; expected one of {SITES}")
        if record.work > 0 and record.serial_s > 0:
            self._tau[record.site] = record.serial_s / record.work
        if record.backend in ("thread", "process") and record.items > 0:
            k = max(1, min(int(record.workers), int(record.items)))
            overhead = record.parallel_s - record.serial_s / k
            self._per_item[(record.site, record.backend)] = max(
                overhead / record.items, 1e-9
            )

    @classmethod
    def default(cls) -> "CostModel":
        """Model calibrated from the committed reference-machine ledger."""
        return cls(_DEFAULT_LEDGER_RECORDS)

    @classmethod
    def from_ledger(cls, source: Any) -> "CostModel":
        """Build a model from a ``BENCH_hotpath.json`` path or parsed dict.

        Prefers the explicit ``results["dispatch_sites"]`` records written by
        the current bench harness; for older ledgers it reconstructs records
        from the ``refd_fanout``/``distance_fanout``/``round_dispatch``/
        ``e2e_round`` metrics using the known bench geometries.  Sites the
        ledger does not cover keep the built-in defaults.
        """
        if isinstance(source, (str, Path)):
            data = json.loads(Path(source).read_text())
        else:
            data = source
        results = data.get("results", data) if isinstance(data, Mapping) else {}
        records = list(cls._records_from_results(results))
        covered = {record.site for record in records}
        records.extend(
            record for record in _DEFAULT_LEDGER_RECORDS if record.site not in covered
        )
        model = cls(records)
        shm_min_bytes = cls._shm_crossover_bytes(results)
        if shm_min_bytes is not None:
            model.shm_min_bytes = shm_min_bytes
        overhead = results.get("trace_record_overhead")
        if isinstance(overhead, Mapping):
            for key in ("eager_step_s", "replay_step_s", "overhead_s"):
                value = overhead.get(key)
                if value is not None and float(value) > 0:
                    model.train_costs[key] = float(value)
        return model

    @staticmethod
    def _records_from_results(results: Mapping) -> Iterable[BenchRecord]:
        for raw in results.get("dispatch_sites") or []:
            yield BenchRecord(
                site=str(raw["site"]),
                backend=str(raw["backend"]),
                items=int(raw["items"]),
                work=float(raw["work"]),
                serial_s=float(raw["serial_s"]),
                parallel_s=float(raw["parallel_s"]),
                workers=int(raw.get("workers", 2)),
            )
        if "dispatch_sites" in results:
            return
        refd = results.get("refd_fanout")
        if isinstance(refd, Mapping) and "serial_s" in refd and "process_s" in refd:
            yield BenchRecord(
                site="refd",
                backend="process",
                items=_REFD_BENCH_ITEMS,
                work=float(_REFD_BENCH_ITEMS * _REFD_BENCH_DIM),
                serial_s=float(refd["serial_s"]),
                parallel_s=float(refd["process_s"]),
                workers=int(refd.get("workers", 2)),
            )
        distance = results.get("distance_fanout")
        if isinstance(distance, Mapping) and "serial_s" in distance:
            yield BenchRecord(
                site="distance",
                backend="process",
                items=int(distance.get("blocks", _DISTANCE_BENCH_BLOCKS)),
                work=float(_DISTANCE_BENCH_N * _DISTANCE_BENCH_N * _DISTANCE_BENCH_DIM),
                serial_s=float(distance["serial_s"]),
                parallel_s=float(distance["process_s"]),
                workers=int(distance.get("workers", 2)),
            )
        round_dispatch = results.get("round_dispatch")
        e2e = results.get("e2e_round")
        if (
            isinstance(round_dispatch, Mapping)
            and isinstance(e2e, Mapping)
            and "inline_s" in round_dispatch
            and "current_s" in e2e
        ):
            yield BenchRecord(
                site="round",
                backend="process",
                items=_ROUND_BENCH_ITEMS,
                work=float(_ROUND_BENCH_ITEMS * _ROUND_BENCH_DIM),
                serial_s=float(e2e["current_s"]),
                parallel_s=float(round_dispatch["inline_s"]),
                workers=2,
            )

    @staticmethod
    def _shm_crossover_bytes(results: Mapping) -> Optional[int]:
        round_dispatch = results.get("round_dispatch")
        if not isinstance(round_dispatch, Mapping):
            return None
        inline_s = round_dispatch.get("inline_s")
        shm_s = round_dispatch.get("shm_s")
        if inline_s is None or shm_s is None:
            return None
        overhead = float(shm_s) - float(inline_s)
        if overhead <= 0:
            return 0  # shm is free here: always use it
        return int(overhead * _SHM_BANDWIDTH_BYTES_PER_S)

    def backends_for(self, site: str) -> List[str]:
        return sorted({backend for s, backend in self._per_item if s == site})

    def estimate_serial(self, site: str, work: Optional[float]) -> Optional[float]:
        tau = self._tau.get(site)
        if tau is None or work is None:
            return None
        return tau * float(work)

    def estimate_parallel(
        self,
        site: str,
        backend: str,
        work: Optional[float],
        items: int,
        workers: int,
    ) -> Optional[float]:
        tau = self._tau.get(site)
        per_item = self._per_item.get((site, backend))
        if tau is None or per_item is None or work is None:
            return None
        k = max(1, min(int(workers), int(items)))
        return tau * float(work) / k + per_item * int(items)

    def estimate_training(self, steps: int) -> Tuple[float, float]:
        """``(eager_s, replay_s)`` estimates for ``steps`` optimizer steps.

        The replay estimate charges the first step at eager cost plus the
        one-off recording overhead; the remaining ``steps - 1`` run at the
        replayed per-step cost.
        """
        steps = max(1, int(steps))
        costs = self.train_costs
        eager = costs["eager_step_s"] * steps
        replay = (
            costs["eager_step_s"]
            + costs["overhead_s"]
            + costs["replay_step_s"] * (steps - 1)
        )
        return eager, replay

    def choose(
        self, site: str, items: int, work: Optional[float], workers: int
    ) -> Tuple[str, str, Optional[float], Optional[float]]:
        """Pick a backend; returns ``(backend, reason, est_serial, est_parallel)``."""
        if site == "grid":
            if items >= 2 and workers >= 2:
                return "process", f"grid: {items} cells across {workers} workers", None, None
            return "serial", "grid: single cell or single worker", None, None
        if items <= 1:
            return "serial", "single work item", None, None
        if workers <= 1:
            return "serial", "one worker: pooling cannot win", None, None
        est_serial = self.estimate_serial(site, work)
        if est_serial is None:
            return "serial", "uncalibrated problem size: defaulting to serial", None, None
        best_backend, best_est = "serial", est_serial
        for backend in self.backends_for(site):
            est = self.estimate_parallel(site, backend, work, items, workers)
            if est is not None and est < self.margin * est_serial and est < best_est:
                best_backend, best_est = backend, est
        if best_backend == "serial":
            return (
                "serial",
                f"serial est {est_serial * 1e3:.3f}ms beats pooled estimates "
                f"(margin {self.margin:.2f})",
                est_serial,
                None,
            )
        return (
            best_backend,
            f"{best_backend} est {best_est * 1e3:.3f}ms < "
            f"{self.margin:.2f} x serial {est_serial * 1e3:.3f}ms",
            est_serial,
            best_est,
        )


@dataclass
class DispatchDecision:
    """One recorded routing decision (see ``DispatchPolicy.trace``)."""

    site: str
    backend: str
    workers: int
    use_shared_memory: bool
    items: int
    work: Optional[float]
    reason: str
    est_serial_s: Optional[float] = None
    est_parallel_s: Optional[float] = None
    count: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "backend": self.backend,
            "workers": self.workers,
            "use_shared_memory": self.use_shared_memory,
            "items": self.items,
            "work": self.work,
            "reason": self.reason,
            "est_serial_s": self.est_serial_s,
            "est_parallel_s": self.est_parallel_s,
            "count": self.count,
        }


class DistanceCache:
    """Cross-round cache of exact pairwise kernel values.

    Keys are ``(namespace, digest_a, digest_b)`` where the digests are
    blake2b hashes of the exact row bytes and the namespace pins the kernel
    kind, dimension, dtype and (for cosine) epsilon.  Content addressing
    makes invalidation exact by construction: a mutated row changes its
    digest, so every pair it participates in misses, while pairs of
    untouched rows keep hitting — bitwise-identical values, never stale.
    Bounded FIFO; duplicate rows (e.g. identical LIE updates) share keys
    harmlessly because equal content always maps to the equal value.
    """

    def __init__(self, max_pairs: int = 1 << 17) -> None:
        self.max_pairs = int(max_pairs)
        self._values: Dict[tuple, float] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def row_digests(matrix: np.ndarray) -> List[bytes]:
        """Content digest per row of the exact bytes the kernels consume."""
        matrix = np.ascontiguousarray(matrix)
        return [
            hashlib.blake2b(row.tobytes(), digest_size=16).digest() for row in matrix
        ]

    @staticmethod
    def _key(namespace: tuple, digest_a: bytes, digest_b: bytes) -> tuple:
        if digest_b < digest_a:
            digest_a, digest_b = digest_b, digest_a
        return (namespace, digest_a, digest_b)

    def get(self, namespace: tuple, digest_a: bytes, digest_b: bytes) -> Optional[float]:
        value = self._values.get(self._key(namespace, digest_a, digest_b))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, namespace: tuple, digest_a: bytes, digest_b: bytes, value: float) -> None:
        key = self._key(namespace, digest_a, digest_b)
        if key not in self._values and len(self._values) >= self.max_pairs:
            self._values.pop(next(iter(self._values)))
            self.evictions += 1
        self._values[key] = float(value)

    def __len__(self) -> int:
        return len(self._values)

    def clear(self) -> None:
        self._values.clear()

    def counter_snapshot(self) -> Dict[str, int]:
        return {
            "entries": len(self._values),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Policies pinned to caller-owned executors, one per executor instance, so
#: repeated ``dispatch_for(context)`` calls reuse the same trace, counters
#: and distance cache for the executor's whole lifetime.
_EXECUTOR_POLICIES: "weakref.WeakKeyDictionary[ClientExecutor, DispatchPolicy]" = (
    weakref.WeakKeyDictionary()
)


class DispatchPolicy:
    """The single public entry point for execution-backend selection.

    Construct one of:

    * ``DispatchPolicy.fixed("process", workers=4)`` — every site runs on
      the named backend (the old ``executor="process", workers=4`` kwargs);
    * ``DispatchPolicy.serial()`` — everything inline (the old default);
    * ``DispatchPolicy.adaptive()`` — per-call cost-model decisions
      calibrated from the benchmark ledger (``cost_model=`` accepts
      :meth:`CostModel.from_ledger`);
    * ``DispatchPolicy.for_executor(executor)`` — pin to a caller-owned
      executor instance (how deprecated ``executor=`` kwargs are mapped).

    ``overrides`` statically pins individual sites regardless of mode, e.g.
    ``{"distance": "serial"}``; mutating :attr:`overrides` between rounds
    re-routes subsequent calls (every backend is bit-identical, so this is
    safe mid-run).  String specs are accepted anywhere a policy is:
    ``"adaptive"``, ``"process:4"``, ``"thread:2,distance=serial"``.

    Every decision lands in :attr:`trace` (deduplicated with counts; JSON
    via :meth:`trace_dicts`, surfaced in ``GridStats.dispatch_decisions``
    and ``--stats-json``) and in :attr:`counters`.
    """

    def __init__(
        self,
        mode: str = "fixed",
        backend: str = "serial",
        workers: Optional[int] = None,
        use_shared_memory: bool = True,
        cost_model: Optional[CostModel] = None,
        overrides: Optional[Mapping[str, str]] = None,
        distance_cache: Optional[DistanceCache] = None,
        _pinned: Optional[ClientExecutor] = None,
    ) -> None:
        if mode not in ("fixed", "adaptive"):
            raise ValueError(f"unknown dispatch mode {mode!r}")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.mode = mode
        self.backend = backend
        self.workers = workers
        self.use_shared_memory = bool(use_shared_memory)
        self.cost_model = cost_model or (CostModel.default() if mode == "adaptive" else None)
        self.overrides: Dict[str, str] = {}
        for site, name in (overrides or {}).items():
            if site not in SITES:
                raise ValueError(f"unknown site {site!r}; expected one of {SITES}")
            valid = TRAIN_MODES if site == "train" else BACKENDS
            if name not in valid:
                raise ValueError(
                    f"unknown {site} choice {name!r}; expected one of {valid}"
                )
            self.overrides[site] = name
        self.distance_cache = distance_cache if distance_cache is not None else DistanceCache()
        self._pinned = _pinned
        self._executors: Dict[Tuple[str, bool], ClientExecutor] = {}
        self._trace: Dict[tuple, DispatchDecision] = {}
        self.counters: Dict[str, int] = {
            "decisions": 0,
            "serial": 0,
            "thread": 0,
            "process": 0,
            "eager": 0,
            "replay": 0,
        }

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def fixed(
        cls,
        backend: str,
        workers: Optional[int] = None,
        use_shared_memory: bool = True,
        overrides: Optional[Mapping[str, str]] = None,
    ) -> "DispatchPolicy":
        """Pin every site to one backend (the old scattered kwargs)."""
        return cls(
            mode="fixed",
            backend=backend,
            workers=workers,
            use_shared_memory=use_shared_memory,
            overrides=overrides,
        )

    @classmethod
    def serial(cls) -> "DispatchPolicy":
        """Everything inline — the old default behaviour."""
        return cls.fixed("serial")

    @classmethod
    def adaptive(
        cls,
        workers: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
        overrides: Optional[Mapping[str, str]] = None,
        use_shared_memory: bool = True,
    ) -> "DispatchPolicy":
        """Decide per call from the benchmark-calibrated cost model."""
        return cls(
            mode="adaptive",
            workers=workers,
            cost_model=cost_model,
            overrides=overrides,
            use_shared_memory=use_shared_memory,
        )

    @classmethod
    def for_executor(cls, executor: ClientExecutor) -> "DispatchPolicy":
        """Policy pinned to a caller-owned executor instance.

        One policy per executor (weakly cached), so counters, the decision
        trace and the distance cache persist across calls for as long as the
        executor lives.  This is how the deprecated ``executor=`` kwargs and
        ``DefenseContext.executor`` map onto the policy API.
        """
        if executor is None:
            raise TypeError("for_executor() needs an executor instance")
        policy = _EXECUTOR_POLICIES.get(executor)
        if policy is None:
            policy = cls(
                mode="fixed",
                backend=getattr(executor, "name", "serial"),
                workers=getattr(executor, "workers", None),
                use_shared_memory=bool(getattr(executor, "use_shared_memory", True)),
                _pinned=executor,
            )
            _EXECUTOR_POLICIES[executor] = policy
        return policy

    @classmethod
    def parse(cls, spec: Any) -> "DispatchPolicy":
        """Parse ``"serial" | "thread[:N]" | "process[:N]" | "adaptive[:N]"``
        with optional ``,site=backend`` pinning suffixes."""
        if isinstance(spec, DispatchPolicy):
            return spec
        if spec is None:
            return cls.serial()
        text = str(spec).strip()
        if not text:
            return cls.serial()
        head, *rest = [part.strip() for part in text.split(",")]
        overrides: Dict[str, str] = {}
        for part in rest:
            if not part:
                continue
            site, sep, backend = part.partition("=")
            if not sep:
                raise ValueError(
                    f"bad dispatch override {part!r}; expected site=backend"
                )
            overrides[site.strip()] = backend.strip()
        name, sep, workers_text = head.partition(":")
        workers = None
        if sep:
            workers = int(workers_text)
        if name == "adaptive":
            return cls.adaptive(workers=workers, overrides=overrides)
        if name in BACKENDS:
            return cls.fixed(name, workers=workers, overrides=overrides)
        raise ValueError(
            f"unknown dispatch policy {name!r}; expected one of "
            f"{BACKENDS + ('adaptive',)}"
        )

    @classmethod
    def coerce(cls, value: Any) -> "DispatchPolicy":
        """``None`` -> serial, str -> :meth:`parse`, executor -> pinned."""
        if value is None:
            return cls.serial()
        if isinstance(value, DispatchPolicy):
            return value
        if isinstance(value, ClientExecutor):
            return cls.for_executor(value)
        return cls.parse(value)

    @classmethod
    def from_legacy(
        cls, executor: Any = None, workers: Optional[int] = None
    ) -> "DispatchPolicy":
        """Map the deprecated ``executor=``/``workers=`` kwargs onto a policy.

        Semantics match ``build_executor``: ``None`` runs serially (workers
        ignored), an executor instance is used as-is, a backend name builds
        a fixed policy.
        """
        if isinstance(executor, ClientExecutor):
            return cls.for_executor(executor)
        if executor is None:
            return cls.serial()
        return cls.fixed(str(executor), workers=workers)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    @property
    def is_adaptive(self) -> bool:
        return self.mode == "adaptive"

    def decide(
        self,
        site: str,
        items: int,
        work: Optional[float] = None,
        payload_bytes: Optional[int] = None,
    ) -> DispatchDecision:
        """Route one call: returns the recorded :class:`DispatchDecision`."""
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}; expected one of {SITES}")
        if site == "train":
            raise ValueError(
                "the 'train' site picks an autograd engine, not an executor "
                "backend; use training_mode()"
            )
        items = int(items)
        requested = self.overrides.get(site)
        est_serial = est_parallel = None
        use_shm = self.use_shared_memory
        if requested is not None:
            backend = requested
            workers = self._resolve_workers(backend)
            reason = f"pinned by override[{site}]"
        elif self._pinned is not None:
            backend = self.backend
            workers = getattr(self._pinned, "workers", None) or 1
            use_shm = bool(getattr(self._pinned, "use_shared_memory", True))
            reason = f"pinned to caller executor {backend!r}"
        elif self.mode == "fixed":
            backend = self.backend
            workers = self._resolve_workers(backend)
            reason = f"fixed policy {backend!r}"
        else:
            # Adaptive mode always builds a model in __init__; the fallback
            # narrows the Optional for type checking without changing that.
            cost_model = self.cost_model or CostModel.default()
            candidates = self.workers if self.workers is not None else default_worker_count()
            backend, reason, est_serial, est_parallel = cost_model.choose(
                site, items=items, work=work, workers=candidates
            )
            workers = candidates if backend != "serial" else 1
            if backend == "process" and payload_bytes is not None:
                use_shm = payload_bytes >= cost_model.shm_min_bytes
        decision = DispatchDecision(
            site=site,
            backend=backend,
            workers=int(workers),
            use_shared_memory=use_shm,
            items=items,
            work=float(work) if work is not None else None,
            reason=reason,
            est_serial_s=est_serial,
            est_parallel_s=est_parallel,
        )
        self._record(decision)
        return decision

    def training_mode(self, steps: int) -> str:
        """Resolve ``LocalTrainingConfig.trace == "auto"``: replay or eager?

        ``steps`` is the expected number of optimizer steps one local
        training run performs (batches per epoch x epochs).  Both engines
        are bit-identical, so this is purely a cost call: fixed policies
        take replay whenever recording can amortise (two or more steps),
        adaptive policies compare the cost model's eager and replay
        estimates under the usual serial-biased margin, and
        ``overrides["train"]`` pins the choice outright.  The decision is
        recorded in :attr:`trace` like any other site (``backend`` holds
        the chosen engine name).
        """
        steps = max(1, int(steps))
        est_eager = est_replay = None
        requested = self.overrides.get("train")
        if requested is not None:
            mode = requested
            reason = "pinned by override[train]"
        elif steps < 2:
            mode = "eager"
            reason = "single optimizer step: recording cannot amortise"
        elif self.mode == "fixed":
            mode = "replay"
            reason = "fixed policy: replay records once and is bit-identical"
        else:
            cost_model = self.cost_model or CostModel.default()
            est_eager, est_replay = cost_model.estimate_training(steps)
            if est_replay < cost_model.margin * est_eager:
                mode = "replay"
                reason = (
                    f"replay est {est_replay * 1e3:.3f}ms < "
                    f"{cost_model.margin:.2f} x eager {est_eager * 1e3:.3f}ms"
                )
            else:
                mode = "eager"
                reason = (
                    f"eager est {est_eager * 1e3:.3f}ms beats replay est "
                    f"{est_replay * 1e3:.3f}ms (margin {cost_model.margin:.2f})"
                )
        decision = DispatchDecision(
            site="train",
            backend=mode,
            workers=1,
            use_shared_memory=False,
            items=steps,
            work=float(steps),
            reason=reason,
            est_serial_s=est_eager,
            est_parallel_s=est_replay,
        )
        self._record(decision)
        return mode

    def _resolve_workers(self, backend: str) -> int:
        if backend == "serial":
            return 1
        return self.workers if self.workers is not None else default_worker_count()

    def _record(self, decision: DispatchDecision) -> None:
        self.counters["decisions"] += 1
        self.counters[decision.backend] += 1
        key = (decision.site, decision.backend, decision.items, decision.reason)
        existing = self._trace.get(key)
        if existing is None:
            self._trace[key] = decision
        else:
            existing.count += 1

    @property
    def trace(self) -> List[DispatchDecision]:
        """Deduplicated decision records in first-seen order."""
        return list(self._trace.values())

    def trace_dicts(self) -> List[Dict[str, Any]]:
        """JSON-ready decision trace (what ``--stats-json`` embeds)."""
        return [decision.to_dict() for decision in self.trace]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def executor_for(self, decision: DispatchDecision) -> ClientExecutor:
        """The (lazily built, cached) executor implementing a decision."""
        if self._pinned is not None and decision.backend == getattr(
            self._pinned, "name", None
        ):
            return self._pinned
        key = (decision.backend, decision.use_shared_memory)
        executor = self._executors.get(key)
        if executor is None:
            if decision.backend == "serial":
                executor = SerialExecutor()
            elif decision.backend == "thread":
                executor = ThreadedExecutor(workers=decision.workers)
            else:
                executor = ParallelExecutor(
                    workers=decision.workers,
                    use_shared_memory=decision.use_shared_memory,
                )
            self._executors[key] = executor
        return executor

    def executor_for_tasks(self, tasks: Sequence, site: str = "round") -> ClientExecutor:
        """Decide a backend for one batch of client tasks and return it.

        The decision half of :meth:`map_tasks`, exposed so the fault-tolerant
        round loop (:func:`repro.fl.faults.run_tasks_with_recovery`) can
        drive the chosen executor's ``map_detailed`` with retries and
        deadlines while routing through exactly the same policy.
        """
        tasks = list(tasks)
        work: Optional[float] = None
        payload_bytes: Optional[int] = None
        params = getattr(tasks[0], "global_params", None) if tasks else None
        if params is not None:
            work = float(len(tasks)) * float(params.size)
            payload_bytes = len(tasks) * int(params.nbytes)
        decision = self.decide(site, items=len(tasks), work=work, payload_bytes=payload_bytes)
        return self.executor_for(decision)

    def map_tasks(self, tasks: Sequence, site: str = "round") -> List:
        """Run the round's client tasks on the decided backend."""
        tasks = list(tasks)
        if not tasks:
            return []
        return self.executor_for_tasks(tasks, site=site).map(tasks)

    def fanout(
        self,
        site: str,
        fn: str,
        payloads: Sequence,
        *,
        work: Optional[float] = None,
        kernel: Optional[Callable] = None,
        payload_by_ref: bool = True,
        publish: Optional[Mapping[str, np.ndarray]] = None,
        payloads_from_refs: Optional[Callable] = None,
    ) -> Optional[List]:
        """Run a registered fan-out on the decided backend.

        ``fn`` is a ``register_fanout_fn`` name; ``kernel`` is the in-process
        callable used when the decision (or a capability gate) lands on
        serial.  When ``kernel`` is ``None`` a serial landing returns
        ``None`` so the caller can run its own fused serial loop (REFD).
        ``publish`` maps array names to round-sized arrays that pickling
        backends must ship via shared memory; ``payloads_from_refs`` rebuilds
        the payload list from the published refs.  Callers never inspect
        executor capabilities — the gating that used to live in defense code
        (``pooled_fanout_ready``, ``supports_generic_fanout``) happens here.
        """
        payloads = list(payloads)
        items = len(payloads)
        if items <= 1:
            decision = DispatchDecision(
                site=site,
                backend="serial",
                workers=1,
                use_shared_memory=self.use_shared_memory,
                items=items,
                work=float(work) if work is not None else None,
                reason="single work item",
            )
            self._record(decision)
            executor = None
        else:
            decision = self.decide(site, items=items, work=work)
            executor = None
            if decision.backend != "serial":
                executor = self.executor_for(decision)
                by_ref = payload_by_ref or publish is not None
                if not pooled_fanout_ready(executor, payload_by_ref=by_ref):
                    executor = None
        store = None
        try:
            if (
                executor is not None
                and publish is not None
                and getattr(executor, "fanout_requires_pickling", False)
            ):
                store = executor.publish_arrays(dict(publish))
                if store is None:
                    executor = None
                elif payloads_from_refs is not None:
                    payloads = list(payloads_from_refs(store.refs))
            if executor is None:
                if kernel is None:
                    return None
                return [kernel(payload) for payload in payloads]
            return executor.map_fn(fn, payloads)
        finally:
            if store is not None:
                store.close()

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def _iter_executors(self) -> Iterable[ClientExecutor]:
        seen = set()
        if self._pinned is not None:
            seen.add(id(self._pinned))
            yield self._pinned
        for executor in self._executors.values():
            if id(executor) not in seen:
                seen.add(id(executor))
                yield executor

    def counter_snapshot(self) -> Dict[str, int]:
        """Decision counters, distance-cache counters and executor counters."""
        snapshot: Dict[str, int] = dict(self.counters)
        for key, value in self.distance_cache.counter_snapshot().items():
            snapshot[f"distance_cache_{key}"] = value
        for executor in self._iter_executors():
            name = getattr(executor, "name", "executor")
            for key, value in executor.counter_snapshot().items():
                snapshot[f"{name}_{key}"] = value
        return snapshot

    def close(self) -> None:
        """Release every executor the policy built (and any pinned one)."""
        for executor in self._iter_executors():
            executor.close()
        self._executors.clear()

    def __enter__(self) -> "DispatchPolicy":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def dispatch_for(context: Any) -> Optional[DispatchPolicy]:
    """The policy a defense should dispatch through for this context.

    Prefers ``context.dispatch`` (set by the simulation's policy); falls
    back to a policy pinned to the legacy ``context.executor``; returns
    ``None`` for bare contexts, which callers treat as plain serial.
    """
    dispatch = getattr(context, "dispatch", None)
    if dispatch is not None:
        return dispatch
    executor = getattr(context, "executor", None)
    if executor is None:
        return None
    return DispatchPolicy.for_executor(executor)
