"""Per-round client selection strategies.

The paper samples 10 of 100 available clients uniformly at random each round
(cross-device FL).  A deterministic round-robin selector is also provided for
tests that need full control over which clients participate.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["ClientSelector", "UniformSelector", "RoundRobinSelector"]


class ClientSelector:
    """Base class: chooses which client ids participate in a round."""

    def select(
        self, client_ids: Sequence[int], num_selected: int, rng: np.random.Generator
    ) -> List[int]:
        """Return the ids of the clients participating this round."""
        raise NotImplementedError


class UniformSelector(ClientSelector):
    """Uniformly random selection without replacement (the paper's setting)."""

    def select(
        self, client_ids: Sequence[int], num_selected: int, rng: np.random.Generator
    ) -> List[int]:
        if num_selected > len(client_ids):
            raise ValueError("cannot select more clients than exist")
        chosen = rng.choice(np.asarray(client_ids), size=num_selected, replace=False)
        return sorted(int(c) for c in chosen)


class RoundRobinSelector(ClientSelector):
    """Deterministic cyclic selection, useful for reproducible unit tests."""

    def __init__(self) -> None:
        self._cursor = 0

    def select(
        self, client_ids: Sequence[int], num_selected: int, rng: np.random.Generator
    ) -> List[int]:
        if num_selected > len(client_ids):
            raise ValueError("cannot select more clients than exist")
        ids = list(client_ids)
        chosen = [ids[(self._cursor + offset) % len(ids)] for offset in range(num_selected)]
        self._cursor = (self._cursor + num_selected) % len(ids)
        return sorted(chosen)
