"""End-to-end federated learning simulation with optional attack and defense.

:class:`FederatedSimulation` wires together the dataset partitioning, benign
clients, the single adversary (an :class:`~repro.attacks.base.Attack`
instance controlling a fraction of the client ids), the server and the
defense, and produces the per-round records from which the paper's metrics
(accuracy, ASR, DPR) are computed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data.partition import partition_dataset
from ..data.synthetic import SyntheticImageTask
from ..defenses.base import Defense, NoDefense
from ..nn.modules import Module
from .client import BenignClient
from .dispatch_policy import DispatchPolicy
from .executor import ClientExecutor, ShardRef, SharedArrayStore
from .faults import (
    FaultInjector,
    FaultStats,
    ResilienceConfig,
    load_checkpoint,
    run_tasks_with_recovery,
    save_checkpoint,
)
from .selection import ClientSelector, UniformSelector
from .server import Server
from .types import AttackRoundContext, LocalTrainingConfig, ModelUpdate, RoundRecord

__all__ = ["FederatedSimulation", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of a complete simulation run."""

    records: List[RoundRecord]
    final_params: np.ndarray
    malicious_client_ids: List[int]

    @property
    def accuracies(self) -> List[float]:
        """Global-model accuracy after every round."""
        return [record.accuracy for record in self.records]

    @property
    def max_accuracy(self) -> float:
        """The paper's ``acc_m``: best global accuracy reached during the run."""
        return max(self.accuracies) if self.records else 0.0

    @property
    def final_accuracy(self) -> float:
        """Accuracy after the last round."""
        return self.accuracies[-1] if self.records else 0.0


class FederatedSimulation:
    """Cross-device FL simulation following the paper's experimental setup.

    Parameters
    ----------
    task:
        The dataset task (train/test split plus metadata).
    model_factory:
        Zero-argument callable building a fresh classifier; all clients and
        the server share the architecture.
    num_clients, clients_per_round:
        Total client population and the number sampled per round
        (100 and 10 in the paper).
    malicious_fraction:
        Fraction of the client population controlled by the adversary
        (0.2 in the main experiments; 0.1 and 0.3 in Fig. 6).
    beta:
        Dirichlet heterogeneity parameter; ``None`` yields an i.i.d. split.
    attack, defense:
        The adversary's strategy (``None`` disables the attack) and the
        server's aggregation rule (``None`` means plain FedAvg).
    reference_fraction:
        Fraction of the *test* split handed to the server as the REFD
        reference dataset (the remaining samples are used for evaluation to
        avoid leakage).  Only relevant when the defense needs it.
    policy:
        The :class:`~repro.fl.dispatch_policy.DispatchPolicy` routing the
        round's client fan-out and the defenses' per-update / row-block
        work — ``DispatchPolicy.serial()`` (``None``, the default),
        ``DispatchPolicy.fixed("process", workers=4)``,
        ``DispatchPolicy.adaptive()`` (benchmark-calibrated per-call
        decisions), or a spec string like ``"process:4"``.  All backends
        are bit-identical for a given seed; process backends additionally
        require ``model_factory`` to be picklable (e.g.
        :class:`repro.models.ClassifierFactory`).  When the planned round
        backend is a shared-memory process pool, the simulation publishes
        every benign client's round-invariant data shard (and the defense's
        reference arrays) in a once-per-simulation shared-memory
        :class:`~repro.fl.executor.SharedArrayStore`, so per-round task
        payloads stay tiny.  Defense matrices that change every round (the
        distance plane's stacked update matrix, REFD's parameter vectors)
        are not stored here: the executor publishes them per call through
        :meth:`~repro.fl.executor.ClientExecutor.publish_arrays` and the
        per-round parameter lease, so the store holds only round-invariant
        data.
    resilience:
        Optional :class:`~repro.fl.faults.ResilienceConfig` enabling the
        fault-tolerant round loop: per-task retries with backoff, a round
        deadline that cuts stragglers (recorded in
        ``RoundRecord.cut_client_ids``), shm-failure degradation to inline
        payloads, broken-pool rebuilds — and, when the config carries a
        :class:`~repro.fl.faults.FaultPlan`, deterministic fault injection.
        ``None`` (the default) keeps the zero-overhead hot path.
    executor, workers:
        Deprecated — pass ``policy`` instead.  ``executor=`` accepts what
        it always did (an executor instance or a backend name) and, with
        ``workers=``, maps onto the equivalent policy with a
        ``DeprecationWarning``.
    """

    def __init__(
        self,
        task: SyntheticImageTask,
        model_factory: Callable[[], Module],
        num_clients: int = 100,
        clients_per_round: int = 10,
        malicious_fraction: float = 0.2,
        beta: Optional[float] = 0.5,
        attack=None,
        defense: Optional[Defense] = None,
        training_config: Optional[LocalTrainingConfig] = None,
        selector: Optional[ClientSelector] = None,
        reference_fraction: float = 0.5,
        assumed_malicious_fraction: Optional[float] = None,
        eval_batch_size: int = 256,
        seed: int = 0,
        policy=None,
        resilience: Optional[ResilienceConfig] = None,
        executor=None,
        workers: Optional[int] = None,
    ) -> None:
        if num_clients < 2:
            raise ValueError("need at least two clients")
        if not 1 <= clients_per_round <= num_clients:
            raise ValueError("clients_per_round must be in [1, num_clients]")
        if not 0.0 <= malicious_fraction < 1.0:
            raise ValueError("malicious_fraction must be in [0, 1)")
        if executor is not None or workers is not None:
            warnings.warn(
                "FederatedSimulation(executor=..., workers=...) is deprecated; "
                "pass policy=DispatchPolicy.fixed(...) / DispatchPolicy.for_executor(...) "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if policy is not None:
                raise ValueError(
                    "pass either policy= or the deprecated executor=/workers= "
                    "arguments, not both"
                )
            policy = DispatchPolicy.from_legacy(executor, workers)
        self.task = task
        self.model_factory = model_factory
        self.num_clients = num_clients
        self.clients_per_round = clients_per_round
        self.malicious_fraction = malicious_fraction
        self.beta = beta
        self.attack = attack
        self.training_config = training_config or LocalTrainingConfig()
        self.selector = selector or UniformSelector()
        self.eval_batch_size = eval_batch_size
        self.dispatch: DispatchPolicy = DispatchPolicy.coerce(policy)
        # Plan the round backend up front: the shard store only pays for
        # itself when rounds actually reach a shared-memory process pool.
        # Adaptive mode needs the problem size, so probe the model dimension
        # once; per-round calls re-decide with the actual task geometry.
        plan_work = None
        if self.dispatch.is_adaptive:
            from ..nn.serialization import get_flat_params

            plan_work = float(clients_per_round) * float(
                get_flat_params(model_factory()).size
            )
        round_plan = self.dispatch.decide(
            "round", items=clients_per_round, work=plan_work
        )
        self.executor: ClientExecutor = self.dispatch.executor_for(round_plan)
        self._rng = np.random.default_rng(seed)
        self.resilience = resilience
        self.fault_stats = FaultStats()
        self._injector: Optional[FaultInjector] = None
        if resilience is not None and resilience.fault_plan is not None:
            self._injector = FaultInjector(resilience.fault_plan, self.fault_stats)
        # Backoff jitter draws from its own stream: wall-clock retry timing
        # must never perturb the science RNGs.
        self._retry_rng = np.random.default_rng((seed + 1) * 7919)

        # Resolve trace="auto" through the policy's train site before the
        # clients capture their config: an average shard yields
        # ~train_size/num_clients samples, so that is the optimizer-step
        # count the record-vs-replay trade is priced at.  Both engines are
        # bit-identical, so this only moves wall-clock time.
        if getattr(self.training_config, "trace", "auto") == "auto":
            samples_per_client = max(1, len(task.train) // num_clients)
            steps = self.training_config.local_epochs * max(
                1, -(-samples_per_client // self.training_config.batch_size)
            )
            self.training_config = replace(
                self.training_config, trace=self.dispatch.training_mode(steps)
            )

        self._partition_clients(seed)

        assumed = (
            assumed_malicious_fraction
            if assumed_malicious_fraction is not None
            else malicious_fraction
        )
        expected_malicious = int(round(assumed * clients_per_round))
        defense = defense or NoDefense()
        reference_dataset, eval_dataset = self._split_reference(defense, reference_fraction)
        self.eval_dataset = eval_dataset
        reference_ref = self._publish_shard_store(reference_dataset)
        self.server = Server(
            model_factory=model_factory,
            defense=defense,
            expected_num_malicious=max(expected_malicious, 1),
            reference_dataset=reference_dataset,
            seed=seed + 17,
            executor=self.executor,
            reference_ref=reference_ref,
            dispatch=self.dispatch,
        )

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _partition_clients(self, seed: int) -> None:
        partition_rng = np.random.default_rng(seed + 1)
        shards = partition_dataset(
            self.task.train, self.num_clients, beta=self.beta, rng=partition_rng
        )
        num_malicious = int(round(self.malicious_fraction * self.num_clients))
        all_ids = list(range(self.num_clients))
        malicious_ids = partition_rng.choice(
            np.asarray(all_ids), size=num_malicious, replace=False
        )
        self.malicious_client_ids = sorted(int(i) for i in malicious_ids)
        malicious_set = set(self.malicious_client_ids)

        self.benign_clients: Dict[int, BenignClient] = {}
        self.attacker_datasets: Dict[int, object] = {}
        for client_id, shard in enumerate(shards):
            if client_id in malicious_set:
                # The adversary's clients do not use real data (data-free
                # threat model); their shards are kept only for attacks that
                # explicitly require attacker data (Fig. 8 comparator).
                self.attacker_datasets[client_id] = shard
            else:
                self.benign_clients[client_id] = BenignClient(
                    client_id=client_id,
                    dataset=shard,
                    model_factory=self.model_factory,
                    config=self.training_config,
                    seed=seed + 1000 + client_id,
                )
        benign_sizes = [client.num_samples for client in self.benign_clients.values()]
        self._median_benign_samples = int(np.median(benign_sizes)) if benign_sizes else 1

    def _publish_shard_store(self, reference_dataset) -> Optional[ShardRef]:
        """Publish round-invariant arrays in shared memory, once per simulation.

        Every benign client's ``(images, labels)`` shard — and the defense's
        reference arrays, when there are any — go into one
        :class:`~repro.fl.executor.SharedArrayStore` segment, so
        process-backend tasks carry only a tiny
        :class:`~repro.fl.executor.ShardRef` instead of re-pickling their
        image tensors every round.  Backends that share the parent's address
        space (serial/thread), executors with shared memory disabled, and
        platforms without POSIX shm all skip the store and keep inline
        arrays.  Returns the reference-array ref for the server, if any.
        """
        self._shard_store: Optional[SharedArrayStore] = None
        self.store_publications = 0
        """Shared-memory store segments this simulation created (0 or 1).
        Task-level arrays shared at *grid* level (the dispatch layer's
        per-dataset store) are attached upstream and never counted here; the
        per-simulation store only re-packs the fancy-indexed client shards
        and reference arrays, which cannot alias the dataset segment."""
        if not getattr(self.executor, "supports_shard_store", False):
            return None
        arrays: Dict[str, np.ndarray] = {}
        for client_id, client in self.benign_clients.items():
            images, labels = client.dataset.arrays()
            arrays[f"client/{client_id}/images"] = images
            arrays[f"client/{client_id}/labels"] = labels
        if reference_dataset is not None:
            ref_images, ref_labels = reference_dataset.arrays()
            arrays["reference/images"] = ref_images
            arrays["reference/labels"] = ref_labels
        try:
            self._shard_store = SharedArrayStore(arrays, persistent=True)
        except (ImportError, OSError):  # pragma: no cover - no POSIX shm
            return None
        self.store_publications += 1
        refs = self._shard_store.refs
        for client_id, client in self.benign_clients.items():
            client.shard_ref = ShardRef(
                images=refs[f"client/{client_id}/images"],
                labels=refs[f"client/{client_id}/labels"],
            )
        if reference_dataset is not None:
            return ShardRef(
                images=refs["reference/images"], labels=refs["reference/labels"]
            )
        return None

    def _split_reference(self, defense: Defense, reference_fraction: float):
        """Give REFD-style defenses a balanced reference set from the test split."""
        needs_reference = getattr(defense, "requires_reference_dataset", False)
        if not needs_reference:
            return None, self.task.test
        if not 0.0 < reference_fraction < 1.0:
            raise ValueError("reference_fraction must be in (0, 1)")
        test = self.task.test
        labels = test.labels
        reference_indices: List[int] = []
        eval_indices: List[int] = []
        rng = np.random.default_rng(99)
        for cls in range(self.task.num_classes):
            cls_indices = np.flatnonzero(labels == cls)
            rng.shuffle(cls_indices)
            cut = int(round(len(cls_indices) * reference_fraction))
            reference_indices.extend(cls_indices[:cut].tolist())
            eval_indices.extend(cls_indices[cut:].tolist())
        return test.subset(reference_indices), test.subset(eval_indices)

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def run_round(self) -> RoundRecord:
        """Execute one full FL round and return its record."""
        round_number = self.server.round_number
        selected = self.selector.select(
            list(range(self.num_clients)), self.clients_per_round, self._rng
        )
        malicious_set = set(self.malicious_client_ids)
        selected_malicious = [cid for cid in selected if cid in malicious_set]
        selected_malicious_set = set(selected_malicious)
        selected_benign = [cid for cid in selected if cid not in selected_malicious_set]

        global_params = self.server.distribute()
        tasks = [
            self.benign_clients[cid].make_task(global_params, round_number)
            for cid in selected_benign
        ]
        cut_client_ids: List[int] = []
        if self.resilience is None:
            results = self.dispatch.map_tasks(tasks)
        elif tasks:
            results, cut_client_ids = run_tasks_with_recovery(
                self.dispatch.executor_for_tasks(tasks),
                tasks,
                round_number=round_number,
                resilience=self.resilience,
                stats=self.fault_stats,
                rng=self._retry_rng,
                injector=self._injector,
            )
        else:
            results = []
        benign_updates: List[ModelUpdate] = [
            self.benign_clients[result.client_id].consume_result(result)
            for result in results
        ]

        malicious_updates: List[ModelUpdate] = []
        attack_metadata: Dict[str, float] = {}
        if self.attack is not None and selected_malicious:
            context = AttackRoundContext(
                round_number=round_number,
                global_params=global_params,
                previous_global_params=self.server.previous_global_params,
                model_factory=self.model_factory,
                num_classes=self.task.num_classes,
                image_shape=self.task.image_shape,
                selected_malicious_ids=selected_malicious,
                training_config=self.training_config,
                benign_num_samples=self._median_benign_samples,
                rng=self._rng,
                benign_updates=benign_updates if self.attack.requires_benign_updates else None,
                attacker_datasets=(
                    self.attacker_datasets if self.attack.requires_attacker_data else None
                ),
            )
            malicious_updates = self.attack.craft_updates(context)
            if len(malicious_updates) != len(selected_malicious):
                raise RuntimeError(
                    f"attack {self.attack.name} returned {len(malicious_updates)} updates "
                    f"for {len(selected_malicious)} selected malicious clients"
                )

        updates = benign_updates + malicious_updates
        result = self.server.aggregate(updates)
        accuracy, loss = self.server.evaluate(self.eval_dataset, batch_size=self.eval_batch_size)

        num_malicious_passed: Optional[int] = None
        if self.server.defense.selects_updates and result.accepted_client_ids is not None:
            accepted = set(result.accepted_client_ids)
            num_malicious_passed = len([cid for cid in selected_malicious if cid in accepted])

        return RoundRecord(
            round_number=round_number,
            selected_client_ids=selected,
            selected_malicious_ids=selected_malicious,
            accepted_client_ids=result.accepted_client_ids,
            accuracy=accuracy,
            test_loss=loss,
            num_malicious_passed=num_malicious_passed,
            attack_metadata=attack_metadata,
            cut_client_ids=cut_client_ids,
        )

    def run(
        self,
        num_rounds: int,
        checkpoint_path=None,
        checkpoint_every: int = 1,
        resume: bool = False,
    ) -> SimulationResult:
        """Run ``num_rounds`` rounds and return the aggregated result.

        With ``checkpoint_path`` set, the full simulation state (RNG streams,
        parameter vectors, round records) is written atomically after every
        ``checkpoint_every``-th round; ``resume=True`` restores a compatible
        checkpoint first and re-runs only the missing rounds — bit-identical
        to an uninterrupted run, because every state component round-trips
        exactly through JSON.  A missing, corrupt, or incompatible checkpoint
        silently starts from round 0.
        """
        if num_rounds < 1:
            raise ValueError("num_rounds must be at least 1")
        records: List[RoundRecord] = []
        if checkpoint_path is not None and resume:
            state = load_checkpoint(checkpoint_path)
            if state is not None:
                try:
                    self.load_state_dict(state)
                except (KeyError, TypeError, ValueError):
                    pass  # incompatible checkpoint: start fresh
                else:
                    records = [
                        RoundRecord.from_dict(payload)
                        for payload in state.get("records", [])
                    ]
                    self.fault_stats.rounds_resumed += len(records)
        # A resumed run counts ``num_rounds`` as the *total*; a fresh call
        # keeps the historical relative semantics (run ``num_rounds`` more).
        remaining = max(0, num_rounds - len(records))
        for offset in range(remaining):
            records.append(self.run_round())
            if checkpoint_path is not None and (
                len(records) % max(1, checkpoint_every) == 0
                or offset == remaining - 1
            ):
                save_checkpoint(checkpoint_path, self, records)
                self.fault_stats.checkpoints_written += 1
        return SimulationResult(
            records=records,
            final_params=self.server.global_params.copy(),
            malicious_client_ids=list(self.malicious_client_ids),
        )

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """JSON-safe snapshot of everything a resumed run needs.

        Covers the selection RNG, the server (parameters + RNG + round
        counter) and every benign client's RNG stream; stateful attacks or
        defenses may opt in by exposing ``state_dict``/``load_state_dict``
        themselves.  Dataset partitioning is *not* stored — it is a pure
        function of the constructor arguments, so the resuming process
        rebuilds it identically from the same config.
        """
        state: Dict = {
            "round_number": int(self.server.round_number),
            "rng_state": self._rng.bit_generator.state,
            "retry_rng_state": self._retry_rng.bit_generator.state,
            "server": self.server.state_dict(),
            "client_rng_states": {
                str(client_id): client._rng.bit_generator.state
                for client_id, client in self.benign_clients.items()
            },
        }
        for name, component in (("attack", self.attack), ("defense", self.server.defense)):
            hook = getattr(component, "state_dict", None)
            if callable(hook):
                state[f"{name}_state"] = hook()
        return state

    def load_state_dict(self, state: Dict) -> None:
        """Restore the snapshot written by :meth:`state_dict`."""
        client_states = state["client_rng_states"]
        missing = set(client_states) != {
            str(client_id) for client_id in self.benign_clients
        }
        if missing:
            raise ValueError(
                "checkpoint client population does not match this simulation"
            )
        self.server.load_state_dict(state["server"])
        self._rng = np.random.default_rng()
        self._rng.bit_generator.state = state["rng_state"]
        self._retry_rng = np.random.default_rng()
        self._retry_rng.bit_generator.state = state["retry_rng_state"]
        for client_id, client in self.benign_clients.items():
            client._rng.bit_generator.state = client_states[str(client_id)]
        for name, component in (("attack", self.attack), ("defense", self.server.defense)):
            payload = state.get(f"{name}_state")
            hook = getattr(component, "load_state_dict", None)
            if payload is not None and callable(hook):
                hook(payload)

    def close(self) -> None:
        """Release pooled executor workers and the shared-memory shard store."""
        self.dispatch.close()
        if self._shard_store is not None:
            self._shard_store.close()
            self._shard_store = None

    def __enter__(self) -> "FederatedSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
