"""Deterministic fault injection and fault-tolerant round execution.

The execution plane built so far (process fan-out, shm data plane,
claim-lease grid sharding, adaptive dispatch) is fast but brittle: a worker
crash mid-round kills the whole simulation and a hung client stalls a round
forever.  This module supplies both halves of the fix:

**Injection** — :class:`FaultPlan` is a seeded, serializable list of
:class:`FaultEvent` coordinates (round × client-or-slot × cell) naming which
fault fires where: worker crashes (hard kill under a process backend, a
raised :class:`~repro.fl.executor.InjectedWorkerCrash` otherwise), task
hangs (stragglers), shm-attach failures, and torn cache artifacts (applied
by the grid runner, see :meth:`FaultPlan.artifact_events`).
:class:`FaultInjector` arms tasks with picklable
:class:`~repro.fl.executor.FaultDirective` payloads, fire-once per
coordinate, so the same plan replays bit-identically under a fixed seed.

**Recovery** — :func:`run_tasks_with_recovery` drives
:meth:`ClientExecutor.map_detailed
<repro.fl.executor.ClientExecutor.map_detailed>` with a retry budget,
exponential backoff + seeded jitter, a per-attempt round deadline that cuts
stragglers (cut clients are recorded in
:attr:`RoundRecord.cut_client_ids <repro.fl.types.RoundRecord>` so defense
semantics stay explicit), mid-round broken-pool rebuilds with resubmission
of only the lost tasks (bit-identical because every task carries its own
RNG state), and shm-attach failures degrading to inline payloads.
:class:`FaultStats` counts everything that fired and everything that was
recovered.

**Checkpoint/resume** — :func:`save_checkpoint`/:func:`load_checkpoint`
snapshot a :class:`~repro.fl.simulation.FederatedSimulation` at round
granularity (atomically, via :func:`repro.experiments.io.atomic_write_json`)
so a killed runner resumes instead of recomputing; the parameter vectors and
RNG states round-trip exactly through JSON, so a resumed run is
bit-identical to an uninterrupted one.

Determinism contract: fault *injection* is a pure function of the plan (and
the plan's seed, for :meth:`FaultPlan.random`); *recovery* only ever re-runs
pure tasks or drops them, and backoff jitter draws from a dedicated RNG that
feeds nothing else — so wall-clock nondeterminism never reaches the science.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from .executor import (
    ClientExecutor,
    ClientTask,
    ClientTaskResult,
    FaultDirective,
    ShmAttachFailure,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "ResilienceConfig",
    "RoundExecutionError",
    "run_tasks_with_recovery",
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_VERSION",
]

#: Task-level fault kinds (executed inside ``run_client_task``) plus the
#: grid-level ``corrupt-artifact`` kind (applied to a cell's cache file).
FAULT_KINDS = ("crash", "hang", "shm", "corrupt-artifact")

_TASK_KINDS = ("crash", "hang", "shm")


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One planned fault at a (round, client-or-slot, cell) coordinate.

    ``client`` addresses a specific client id; ``slot`` addresses the
    *position* in the round's selected cohort (useful when the plan author
    does not know which clients a seed will select).  When both are ``None``
    slot 0 is targeted.  ``cell`` is a substring matched against the grid
    cell label (``None`` matches any cell, including single ``repro run``
    invocations); ``round`` of ``None`` matches every round (first match
    wins because events fire once).  ``seconds`` is the hang duration for
    ``kind="hang"``.
    """

    kind: str
    round: Optional[int] = None
    client: Optional[int] = None
    slot: Optional[int] = None
    seconds: float = 0.0
    cell: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind '{self.kind}'; choose from {FAULT_KINDS}"
            )

    def to_dict(self) -> Dict:
        payload: Dict = {"kind": self.kind}
        if self.round is not None:
            payload["round"] = int(self.round)
        if self.client is not None:
            payload["client"] = int(self.client)
        if self.slot is not None:
            payload["slot"] = int(self.slot)
        if self.seconds:
            payload["seconds"] = float(self.seconds)
        if self.cell is not None:
            payload["cell"] = str(self.cell)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultEvent":
        return cls(
            kind=str(payload["kind"]),
            round=None if payload.get("round") is None else int(payload["round"]),
            client=None if payload.get("client") is None else int(payload["client"]),
            slot=None if payload.get("slot") is None else int(payload["slot"]),
            seconds=float(payload.get("seconds", 0.0)),
            cell=payload.get("cell"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of fault events.

    The plan is pure data: the same plan (same file, same seed) injects the
    same faults at the same coordinates on every replay, which is what lets
    chaos CI assert bit-identical recovery.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def for_cell(self, label: Optional[str]) -> "FaultPlan":
        """The sub-plan whose events apply to one grid cell label."""
        if label is None:
            return self
        kept = tuple(
            event
            for event in self.events
            if event.cell is None or event.cell in label
        )
        return FaultPlan(events=kept, seed=self.seed)

    def task_events_for_round(self, round_number: int) -> List[FaultEvent]:
        """Task-level events (crash/hang/shm) scheduled for one round."""
        return [
            event
            for event in self.events
            if event.kind in _TASK_KINDS
            and (event.round is None or event.round == round_number)
        ]

    def artifact_events(self) -> List[FaultEvent]:
        """Grid-level ``corrupt-artifact`` events."""
        return [event for event in self.events if event.kind == "corrupt-artifact"]

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict:
        return {"seed": int(self.seed), "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        events = tuple(FaultEvent.from_dict(e) for e in payload.get("events", ()))
        return cls(events=events, seed=int(payload.get("seed", 0)))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def save(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    # -- generation ----------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        num_rounds: int,
        num_slots: int,
        rate: float = 0.1,
        kinds: Sequence[str] = _TASK_KINDS,
        hang_seconds: float = 0.5,
    ) -> "FaultPlan":
        """A reproducible random plan: same seed, same events, always.

        Draws one Bernoulli(``rate``) per (round, kind) and a uniform slot
        for each firing event — a convenient way to chaos-test without
        hand-writing coordinates.
        """
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        for round_number in range(num_rounds):
            for kind in kinds:
                if rng.random() >= rate:
                    continue
                slot = int(rng.integers(num_slots))
                events.append(
                    FaultEvent(
                        kind=kind,
                        round=round_number,
                        slot=slot,
                        seconds=hang_seconds if kind == "hang" else 0.0,
                    )
                )
        return cls(events=tuple(events), seed=seed)


# ----------------------------------------------------------------------
# Fault statistics
# ----------------------------------------------------------------------
@dataclass
class FaultStats:
    """Counters for everything the fault plane injected and recovered.

    Surfaced through ``ExperimentResult.fault_stats``, ``GridStats`` and the
    ``--stats-json`` outputs of ``repro run``/``repro grid``.
    """

    crashes_injected: int = 0
    hangs_injected: int = 0
    shm_failures_injected: int = 0
    artifacts_corrupted: int = 0
    artifacts_quarantined: int = 0
    retries: int = 0
    task_failures: int = 0
    tasks_cut: int = 0
    clients_cut: int = 0
    shm_fallbacks: int = 0
    pool_rebuilds: int = 0
    rounds_resumed: int = 0
    checkpoints_written: int = 0

    def note_injected(self, kind: str) -> None:
        if kind == "crash":
            self.crashes_injected += 1
        elif kind == "hang":
            self.hangs_injected += 1
        elif kind == "shm":
            self.shm_failures_injected += 1
        elif kind == "corrupt-artifact":
            self.artifacts_corrupted += 1

    def any(self) -> bool:
        return any(value for value in dataclasses.asdict(self).values())

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def merge(self, counters: Optional[Mapping[str, int]]) -> None:
        """Add another stats mapping (e.g. a worker's) into this one."""
        if not counters:
            return
        for key, value in counters.items():
            if hasattr(self, key):
                setattr(self, key, getattr(self, key) + int(value))


# ----------------------------------------------------------------------
# Resilience configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResilienceConfig:
    """How the round loop retries, cuts, and (optionally) injects faults.

    Picklable, so grid workers receive the per-cell sub-plan alongside the
    cell config.  ``round_deadline`` is a *per-attempt* window in seconds:
    tasks still running when it expires are cut; a cut task is retried while
    the budget lasts and dropped (recorded in ``RoundRecord.cut_client_ids``)
    once it is exhausted.  Erroring tasks that exhaust the budget raise
    :class:`RoundExecutionError` instead — an error is a bug or a real
    fault, a straggler is a scheduling decision.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    jitter: float = 0.25
    round_deadline: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None

    def for_cell(self, label: Optional[str]) -> "ResilienceConfig":
        """This config with the fault plan narrowed to one grid cell."""
        if self.fault_plan is None:
            return self
        return dataclasses.replace(self, fault_plan=self.fault_plan.for_cell(label))

    def without_plan(self) -> "ResilienceConfig":
        """Retry/deadline behaviour only — used for baseline runs."""
        if self.fault_plan is None:
            return self
        return dataclasses.replace(self, fault_plan=None)

    def backoff_delay(self, attempt: int, rng: Optional[np.random.Generator]) -> float:
        """Exponential backoff with jitter for the ``attempt``-th retry."""
        if self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_max, self.backoff_base * (2.0 ** max(0, attempt - 1)))
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


class RoundExecutionError(RuntimeError):
    """A client task kept failing after the retry budget was exhausted."""

    def __init__(
        self,
        round_number: int,
        client_id: int,
        attempts: int,
        cause: Optional[BaseException] = None,
    ) -> None:
        self.round_number = int(round_number)
        self.client_id = int(client_id)
        self.attempts = int(attempts)
        self.cause = cause
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"client {client_id} failed round {round_number} "
            f"after {attempts} attempt(s){detail}"
        )


# ----------------------------------------------------------------------
# Fault injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Arms client tasks with the plan's directives, fire-once per event.

    One injector lives for one simulation; its fired-set is what makes an
    event a single fault rather than a permanent condition, which in turn is
    what makes recovery *possible* (the retried task runs clean).
    """

    def __init__(self, plan: FaultPlan, stats: Optional[FaultStats] = None) -> None:
        self.plan = plan
        self.stats = stats if stats is not None else FaultStats()
        self._fired: Set[Tuple] = set()

    def arm_tasks(
        self,
        tasks: Sequence[ClientTask],
        round_number: int,
        hard_kill: bool = False,
    ) -> List[ClientTask]:
        """Attach directives for this round's events to the matching tasks.

        ``hard_kill`` selects ``os._exit`` crashes (only safe when tasks run
        in worker *processes*); otherwise crashes raise in-process.
        """
        tasks = list(tasks)
        events = self.plan.task_events_for_round(round_number)
        if not events:
            return tasks
        for event in events:
            key = (event.kind, event.round, event.client, event.slot, event.cell)
            if key in self._fired:
                continue
            index = self._target_index(event, tasks)
            if index is None or tasks[index].fault is not None:
                continue
            self._fired.add(key)
            directive = FaultDirective(
                kind=event.kind,
                seconds=event.seconds,
                hard=hard_kill and event.kind == "crash",
            )
            tasks[index] = dataclasses.replace(tasks[index], fault=directive)
            self.stats.note_injected(event.kind)
        return tasks

    @staticmethod
    def _target_index(
        event: FaultEvent, tasks: Sequence[ClientTask]
    ) -> Optional[int]:
        if event.client is not None:
            for index, task in enumerate(tasks):
                if task.client_id == event.client:
                    return index
            return None
        slot = event.slot if event.slot is not None else 0
        if 0 <= slot < len(tasks):
            return slot
        return None


# ----------------------------------------------------------------------
# Fault-tolerant task execution
# ----------------------------------------------------------------------
def _is_shm_failure(task: ClientTask, error: Optional[BaseException]) -> bool:
    if isinstance(error, ShmAttachFailure):
        return True
    return isinstance(error, OSError) and (
        task.params_ref is not None or task.shard_ref is not None
    )


def _inline_task(task: ClientTask) -> ClientTask:
    """Degrade a task to inline payloads (shm attach failed or is failing)."""
    images, labels = task.resolve_arrays()
    params = task.resolve_global_params()
    return dataclasses.replace(
        task,
        global_params=np.array(params, copy=True),
        params_ref=None,
        images=np.array(images, copy=True),
        labels=np.array(labels, copy=True),
        shard_ref=None,
    )


def run_tasks_with_recovery(
    executor: ClientExecutor,
    tasks: Sequence[ClientTask],
    round_number: int,
    resilience: ResilienceConfig,
    stats: FaultStats,
    rng: Optional[np.random.Generator] = None,
    injector: Optional[FaultInjector] = None,
) -> Tuple[List[ClientTaskResult], List[int]]:
    """Run one round's tasks with retries, deadlines, and fault injection.

    Returns ``(results, cut_client_ids)``.  ``results`` preserves task order
    for the surviving clients; ``cut_client_ids`` names the clients whose
    tasks were still stragglers after the retry budget (their RNG streams do
    not advance, so the drop itself is deterministic given deterministic
    timing).  Erroring tasks that exhaust the budget raise
    :class:`RoundExecutionError`.
    """
    tasks = list(tasks)
    if not tasks:
        return [], []
    if injector is not None:
        hard = getattr(executor, "name", "") == "process"
        tasks = injector.arm_tasks(tasks, round_number, hard_kill=hard)
    results: Dict[int, ClientTaskResult] = {}
    dropped: Dict[int, int] = {}
    attempts = [0] * len(tasks)
    pending = list(range(len(tasks)))
    batch = 0
    while pending:
        deadline_at = None
        if resilience.round_deadline is not None:
            deadline_at = time.monotonic() + float(resilience.round_deadline)
        outcomes = executor.map_detailed(
            [tasks[i] for i in pending], deadline_at=deadline_at
        )
        retry: List[int] = []
        for outcome in outcomes:
            i = pending[outcome.index]
            if outcome.result is not None:
                results[i] = outcome.result
                continue
            attempts[i] += 1
            task = tasks[i]
            if task.fault is not None:
                # The injected fault fired; the retry runs the clean task.
                tasks[i] = task = dataclasses.replace(task, fault=None)
            if outcome.cut:
                stats.tasks_cut += 1
            else:
                stats.task_failures += 1
                if _is_shm_failure(task, outcome.error):
                    stats.shm_fallbacks += 1
                    tasks[i] = task = _inline_task(task)
            if attempts[i] > resilience.max_retries:
                if outcome.cut:
                    dropped[i] = task.client_id
                    stats.clients_cut += 1
                else:
                    raise RoundExecutionError(
                        round_number, task.client_id, attempts[i], outcome.error
                    )
            else:
                stats.retries += 1
                retry.append(i)
        pending = retry
        if pending:
            batch += 1
            delay = resilience.backoff_delay(batch, rng)
            if delay > 0:
                time.sleep(delay)
    rebuilds = getattr(executor, "pool_rebuilds", 0)
    if rebuilds > stats.pool_rebuilds:
        stats.pool_rebuilds = rebuilds
    ordered = [results[i] for i in sorted(results)]
    cut_ids = sorted(dropped.values())
    return ordered, cut_ids


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
CHECKPOINT_VERSION = 1


def save_checkpoint(path, simulation, records) -> None:
    """Atomically write a round-granular simulation checkpoint.

    The payload is the simulation's :meth:`~repro.fl.simulation.
    FederatedSimulation.state_dict` (RNG states and parameter vectors, all
    of which round-trip exactly through JSON) plus the round records so far.
    """
    from ..experiments.io import atomic_write_json

    payload = simulation.state_dict()
    payload["version"] = CHECKPOINT_VERSION
    payload["records"] = [record.to_dict() for record in records]
    atomic_write_json(Path(path), payload)


def load_checkpoint(path) -> Optional[Dict]:
    """Read a checkpoint; ``None`` on missing/corrupt/incompatible files.

    Corrupt checkpoints are quarantined by :func:`repro.experiments.io.
    read_json` exactly like torn cache artifacts — a bad checkpoint means
    "start from round 0", never a crash.
    """
    from ..experiments.io import read_json

    payload = read_json(Path(path))
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != CHECKPOINT_VERSION:
        return None
    return payload
