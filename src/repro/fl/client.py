"""Client-side behaviour: benign local training.

Malicious behaviour is *not* implemented here — per the paper's threat model
all adversarial computation happens at a single adversary (see
:mod:`repro.attacks`), which then hands the crafted update to each of its
selected Sybil clients.  The simulation therefore only needs benign clients
plus a record of which client ids the adversary controls.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..nn.modules import Module
from .executor import ClientTask, ClientTaskResult, ShardRef, run_client_task
from .types import LocalTrainingConfig, ModelUpdate

__all__ = ["BenignClient"]


class BenignClient:
    """A protocol-following participant that trains on its own local shard.

    ``shard_ref`` is set by the simulation when the round executor uses the
    once-per-simulation shared-memory shard store: tasks then reference the
    published ``(images, labels)`` arrays instead of carrying them inline,
    so a process-backend task pickles to a few hundred bytes.
    """

    def __init__(
        self,
        client_id: int,
        dataset,
        model_factory: Callable[[], Module],
        config: LocalTrainingConfig,
        seed: int = 0,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError(f"client {client_id} received an empty data shard")
        self.client_id = client_id
        self.dataset = dataset
        self.model_factory = model_factory
        self.config = config
        self.shard_ref: Optional[ShardRef] = None
        self._rng = np.random.default_rng(seed)

    @property
    def num_samples(self) -> int:
        """Number of local training samples (the FedAvg weight n_i)."""
        return len(self.dataset)

    def make_task(self, global_params: np.ndarray, round_number: int) -> ClientTask:
        """Snapshot this round's local-training work as a picklable payload.

        The task captures the client's current RNG *state*; the executor ships
        the advanced state back in the result and :meth:`consume_result`
        restores it, so any executor backend reproduces the serial RNG stream
        exactly.  When :attr:`shard_ref` is set, the task references the
        shard-store publication instead of inlining the arrays.
        """
        if self.shard_ref is not None:
            images: Optional[np.ndarray] = None
            labels: Optional[np.ndarray] = None
        else:
            images, labels = self.dataset.arrays()
        return ClientTask(
            client_id=self.client_id,
            round_number=round_number,
            global_params=global_params,
            images=images,
            labels=labels,
            num_samples=self.num_samples,
            config=self.config,
            model_factory=self.model_factory,
            rng_state=self._rng.bit_generator.state,
            shard_ref=self.shard_ref,
        )

    def consume_result(self, result: ClientTaskResult) -> ModelUpdate:
        """Adopt an executor result: advance the RNG and build the update."""
        if result.client_id != self.client_id:
            raise ValueError(
                f"client {self.client_id} received a result for client {result.client_id}"
            )
        self._rng.bit_generator.state = result.rng_state
        return ModelUpdate(
            client_id=result.client_id,
            parameters=result.parameters,
            num_samples=result.num_samples,
            is_malicious=False,
        )

    def local_update(self, global_params: np.ndarray, round_number: int) -> ModelUpdate:
        """Train a fresh local model initialised from the global parameters."""
        return self.consume_result(run_client_task(self.make_task(global_params, round_number)))
