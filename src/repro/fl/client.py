"""Client-side behaviour: benign local training.

Malicious behaviour is *not* implemented here — per the paper's threat model
all adversarial computation happens at a single adversary (see
:mod:`repro.attacks`), which then hands the crafted update to each of its
selected Sybil clients.  The simulation therefore only needs benign clients
plus a record of which client ids the adversary controls.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..nn.modules import Module
from .executor import ClientTask, ClientTaskResult, run_client_task
from .types import LocalTrainingConfig, ModelUpdate

__all__ = ["BenignClient"]


class BenignClient:
    """A protocol-following participant that trains on its own local shard."""

    def __init__(
        self,
        client_id: int,
        dataset,
        model_factory: Callable[[], Module],
        config: LocalTrainingConfig,
        seed: int = 0,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError(f"client {client_id} received an empty data shard")
        self.client_id = client_id
        self.dataset = dataset
        self.model_factory = model_factory
        self.config = config
        self._rng = np.random.default_rng(seed)

    @property
    def num_samples(self) -> int:
        """Number of local training samples (the FedAvg weight n_i)."""
        return len(self.dataset)

    def make_task(self, global_params: np.ndarray, round_number: int) -> ClientTask:
        """Snapshot this round's local-training work as a picklable payload.

        The task captures the client's current RNG *state*; the executor ships
        the advanced state back in the result and :meth:`consume_result`
        restores it, so any executor backend reproduces the serial RNG stream
        exactly.
        """
        images, labels = self.dataset.arrays()
        return ClientTask(
            client_id=self.client_id,
            round_number=round_number,
            global_params=global_params,
            images=images,
            labels=labels,
            num_samples=self.num_samples,
            config=self.config,
            model_factory=self.model_factory,
            rng_state=self._rng.bit_generator.state,
        )

    def consume_result(self, result: ClientTaskResult) -> ModelUpdate:
        """Adopt an executor result: advance the RNG and build the update."""
        if result.client_id != self.client_id:
            raise ValueError(
                f"client {self.client_id} received a result for client {result.client_id}"
            )
        self._rng.bit_generator.state = result.rng_state
        return ModelUpdate(
            client_id=result.client_id,
            parameters=result.parameters,
            num_samples=result.num_samples,
            is_malicious=False,
        )

    def local_update(self, global_params: np.ndarray, round_number: int) -> ModelUpdate:
        """Train a fresh local model initialised from the global parameters."""
        return self.consume_result(run_client_task(self.make_task(global_params, round_number)))
