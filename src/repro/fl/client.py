"""Client-side behaviour: benign local training.

Malicious behaviour is *not* implemented here — per the paper's threat model
all adversarial computation happens at a single adversary (see
:mod:`repro.attacks`), which then hands the crafted update to each of its
selected Sybil clients.  The simulation therefore only needs benign clients
plus a record of which client ids the adversary controls.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..nn.modules import Module
from ..nn.serialization import get_flat_params, set_flat_params
from .training import train_local_model
from .types import LocalTrainingConfig, ModelUpdate

__all__ = ["BenignClient"]


class BenignClient:
    """A protocol-following participant that trains on its own local shard."""

    def __init__(
        self,
        client_id: int,
        dataset,
        model_factory: Callable[[], Module],
        config: LocalTrainingConfig,
        seed: int = 0,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError(f"client {client_id} received an empty data shard")
        self.client_id = client_id
        self.dataset = dataset
        self.model_factory = model_factory
        self.config = config
        self._rng = np.random.default_rng(seed)

    @property
    def num_samples(self) -> int:
        """Number of local training samples (the FedAvg weight n_i)."""
        return len(self.dataset)

    def local_update(self, global_params: np.ndarray, round_number: int) -> ModelUpdate:
        """Train a fresh local model initialised from the global parameters."""
        model = self.model_factory()
        set_flat_params(model, global_params)
        train_local_model(model, self.dataset, self.config, self._rng)
        return ModelUpdate(
            client_id=self.client_id,
            parameters=get_flat_params(model),
            num_samples=self.num_samples,
            is_malicious=False,
        )
