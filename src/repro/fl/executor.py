"""Pluggable execution backends for the per-round benign-client fan-out.

Each FL round trains ``clients_per_round`` independent local models; the
work units are embarrassingly parallel because every client starts from the
same broadcast global parameters and touches only its own data shard and RNG
stream.  :class:`ClientTask` captures one unit of that work as a fully
picklable payload (plain numpy arrays *or* shared-memory handles, a
:class:`LocalTrainingConfig`, and the client's RNG *state* rather than the
generator object), so the same task can be executed in-process, on a thread
pool, or in a worker process — and produce bit-identical results in all
three cases.

Shared-memory data plane
------------------------
Two kinds of payload are identical across tasks and rounds and therefore
never need to be pickled per task:

* the **global parameter vector** is identical for every task of a round;
  :class:`ParallelExecutor` publishes it once per round through a
  :class:`SharedParamsLease` and rewrites the tasks to carry only a
  :class:`SharedParamsRef` (segment name, dtype, length);
* the **per-client data shards** (and the defense's reference arrays) are
  *round-invariant*; the simulation publishes them once per simulation in a
  :class:`SharedArrayStore` and hands each client a :class:`ShardRef`, so a
  process-backend task pickles to a few hundred bytes instead of shipping
  its image tensor every round.

Workers attach segments read-only through a per-process cache
(:func:`resolve_shared_array`): per-round parameter segments are evicted
when the next round publishes under a new name, while *persistent* segments
(the shard store) stay attached for the lifetime of the simulation.  The
serial and thread backends keep inline arrays — they already share the
parent's address space, so there is nothing to ship.

Named fan-out registry
----------------------
Closures do not pickle, so a process pool cannot run arbitrary callables.
:func:`register_fanout_fn` maintains a module-level registry of named,
picklable work functions; callers pass the *name* to
:meth:`ClientExecutor.map_fn` and the process backend ships tiny
:class:`FanoutCall` envelopes to its workers, which resolve the name in
their own registry (importing ``"package.module:fn"``-style names on
demand).  REFD's per-update D-score inference fans out this way
(:mod:`repro.defenses.refd`), as do the Krum/Bulyan/FoolsGold distance and
cosine row blocks of the defense distance plane
(:mod:`repro.defenses.distances`), whose stacked update matrix is published
once per call through :meth:`ClientExecutor.publish_arrays` instead of
being pickled into every envelope.

Determinism contract
--------------------
A client owns one :class:`numpy.random.Generator` that advances across
rounds.  :func:`run_client_task` reconstructs the generator from the
serialized state, trains, and ships the *advanced* state back so the owning
:class:`~repro.fl.client.BenignClient` can resume exactly where a serial run
would have.  Given the same seed, :class:`SerialExecutor`,
:class:`ThreadedExecutor` and :class:`ParallelExecutor` therefore yield
bit-identical :class:`~repro.fl.types.ModelUpdate` sequences — the
shared-memory paths ship the same bytes as the inline paths, and registered
fan-out functions are pure functions of their payloads.

Picklability
------------
:class:`ParallelExecutor` submits tasks to a
:class:`concurrent.futures.ProcessPoolExecutor`, so every field of the task
must pickle — in particular ``model_factory``.  Closures do not pickle; use
:class:`repro.models.ClassifierFactory` (or any module-level callable /
dataclass) when running with processes.  The experiment layer
(:func:`repro.experiments.runner.build_simulation`) already does.
"""

from __future__ import annotations

import dataclasses
import importlib
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..nn.serialization import get_flat_params, set_flat_params
from ..utils.sanitize import SealedArrayViolation, array_digest, sanitize_enabled, seal
from .training import train_on_arrays
from .types import LocalTrainingConfig

__all__ = [
    "ClientTask",
    "ClientTaskResult",
    "FaultDirective",
    "InjectedWorkerCrash",
    "ShmAttachFailure",
    "TaskOutcome",
    "SharedArrayRef",
    "SharedArrayStore",
    "ShardRef",
    "SharedParamsRef",
    "SharedParamsLease",
    "attach_array_store",
    "resolve_shared_array",
    "FanoutCall",
    "register_fanout_fn",
    "resolve_fanout_fn",
    "run_fanout_call",
    "pooled_fanout_ready",
    "run_client_task",
    "ClientExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ParallelExecutor",
    "build_executor",
    "default_worker_count",
]


# ----------------------------------------------------------------------
# Shared-memory data plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArrayRef:
    """Handle to one array inside a shared-memory segment (picklable).

    ``persistent`` marks segments that outlive a single round (the
    simulation's shard store): the worker-side attach cache keeps them
    mapped, whereas non-persistent segments (per-round parameter leases)
    are evicted as soon as a newer segment is attached.
    """

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int = 0
    persistent: bool = False

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return int(np.dtype(self.dtype).itemsize) * count


#: Byte alignment of arrays packed into one segment; 64 keeps every array
#: cache-line aligned so BLAS kernels see the same layout as a fresh
#: ``np.empty`` allocation.
_SEGMENT_ALIGN = 64


class SharedArrayStore:
    """Parent-side owner of one segment packing many named arrays.

    Create it with a mapping of names to arrays; every array is copied once
    into a single :mod:`multiprocessing.shared_memory` segment and
    :attr:`refs` holds a picklable :class:`SharedArrayRef` per name.  The
    store is a context manager and carries a ``__del__`` safety net, so the
    segment cannot leak even when the round loop raises before its
    ``finally`` runs.  :meth:`close` is idempotent.

    Under ``REPRO_SANITIZE=1`` (see :mod:`repro.utils.sanitize`) the store
    records a BLAKE2b digest of every array at publish time and re-verifies
    it in :meth:`close`: a consumer that defeated the sealed
    ``writeable=False`` flag and wrote into the segment raises
    :class:`~repro.utils.sanitize.SealedArrayViolation` at release instead
    of silently corrupting every attached process.
    """

    def __init__(
        self, arrays: Mapping[str, np.ndarray], persistent: bool = True
    ) -> None:
        from multiprocessing import shared_memory

        self._shm = None  # set early so __del__ is safe if creation raises
        contiguous = {
            name: np.ascontiguousarray(array) for name, array in arrays.items()
        }
        offsets: Dict[str, int] = {}
        total = 0
        for name, array in contiguous.items():
            offsets[name] = total
            total += array.nbytes
            total += (-total) % _SEGMENT_ALIGN
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        self.refs: Dict[str, SharedArrayRef] = {}
        self._digests: Dict[str, str] = {}
        record_digests = sanitize_enabled()
        for name, array in contiguous.items():
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=self._shm.buf, offset=offsets[name]
            )
            view[...] = array
            self.refs[name] = SharedArrayRef(
                segment=self._shm.name,
                dtype=array.dtype.str,
                shape=tuple(array.shape),
                offset=offsets[name],
                persistent=persistent,
            )
            if record_digests:
                self._digests[name] = array_digest(view)

    @property
    def name(self) -> str:
        """Name of the backing shared-memory segment."""
        if self._shm is None:
            raise ValueError("store is closed")
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Size of the backing segment in bytes."""
        if self._shm is None:
            return 0
        return self._shm.size

    def _verify_digests(self) -> List[str]:
        """Names of published arrays whose content changed since publish.

        Kept as its own frame so the verification views over ``shm.buf``
        are dropped before :meth:`close` releases the mapping (an exported
        buffer would make ``SharedMemory.close`` raise ``BufferError``).
        """
        mutated: List[str] = []
        for name, recorded in self._digests.items():
            ref = self.refs[name]
            view = np.ndarray(
                ref.shape,
                dtype=np.dtype(ref.dtype),
                buffer=self._shm.buf,  # type: ignore[union-attr]
                offset=ref.offset,
            )
            if array_digest(view) != recorded:
                mutated.append(name)
            del view
        return mutated

    def close(self) -> None:
        """Close and unlink the segment (idempotent).

        With digests recorded (``REPRO_SANITIZE=1`` at publish time) the
        segment content is re-verified first; a mismatch still releases
        the segment, then raises
        :class:`~repro.utils.sanitize.SealedArrayViolation`.
        """
        if self._shm is None:
            return
        mutated: List[str] = []
        if self._digests and sanitize_enabled():
            mutated = self._verify_digests()
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._shm = None
        if mutated:
            raise SealedArrayViolation(
                "shared array(s) mutated while published: "
                + ", ".join(sorted(mutated))
                + " — some consumer wrote through a sealed shm view "
                "(the static face of this bug is a MUT001-003 lint finding)"
            )

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


@dataclass(frozen=True)
class ShardRef:
    """Shared-memory handles to one client's round-invariant ``(images, labels)``."""

    images: SharedArrayRef
    labels: SharedArrayRef

    def resolve(self) -> Tuple[np.ndarray, np.ndarray]:
        """Attach (or reuse) the segment and return read-only array views."""
        return resolve_shared_array(self.images), resolve_shared_array(self.labels)


@dataclass(frozen=True)
class SharedParamsRef:
    """Handle to a parameter vector published in shared memory (picklable)."""

    name: str
    dtype: str
    size: int


class SharedParamsLease:
    """Parent-side owner of one round's shared-memory parameter segment.

    A thin single-array wrapper over :class:`SharedArrayStore`: create it
    with the round's global parameter vector, hand :attr:`ref` to the tasks,
    and :meth:`release` after the round's results are in (workers only read
    the segment while executing their task).  Usable as a context manager;
    the underlying store's ``__del__`` guarantees the segment is unlinked
    even if ``release`` is never reached.
    """

    def __init__(self, vector: np.ndarray) -> None:
        vector = np.ascontiguousarray(vector)
        self._store = SharedArrayStore({"params": vector}, persistent=False)
        self.ref = SharedParamsRef(
            name=self._store.name, dtype=vector.dtype.str, size=vector.size
        )

    def release(self) -> None:
        """Close and unlink the segment (idempotent)."""
        self._store.close()

    def __enter__(self) -> "SharedParamsLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


#: Worker-process cache of attached segments: ``name -> (shm, persistent)``.
#: A worker handles several tasks per round; all of them reference the same
#: segments, so one attach per (worker, segment) suffices.  Stale per-round
#: parameter segments are detached when a new segment is attached; persistent
#: segments (the simulation's shard store) stay mapped.
_ATTACHED_SEGMENTS: Dict[str, Tuple[object, bool]] = {}


def _attach_segment(name: str, persistent: bool):
    cached = _ATTACHED_SEGMENTS.get(name)
    if cached is not None:
        return cached[0]
    from multiprocessing import shared_memory

    # The parent owns the segment's lifetime, so the attaching side must not
    # register it with the resource tracker (a second registration makes the
    # tracker double-unlink at shutdown).  CPython 3.13+ supports this
    # directly via ``track=False``; older versions need the registration
    # call suppressed for the duration of this one attach.
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    for other in list(_ATTACHED_SEGMENTS):
        other_shm, other_persistent = _ATTACHED_SEGMENTS[other]
        if not other_persistent:
            _ATTACHED_SEGMENTS.pop(other)
            other_shm.close()
    _ATTACHED_SEGMENTS[name] = (shm, persistent)
    return shm


def resolve_shared_array(ref: SharedArrayRef) -> np.ndarray:
    """Attach (or reuse) the segment of ``ref`` and return a read-only view."""
    shm = _attach_segment(ref.segment, ref.persistent)
    view = np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf, offset=ref.offset
    )
    return seal(view)


def attach_array_store(refs: Mapping[str, SharedArrayRef]) -> Dict[str, np.ndarray]:
    """Attach one store publication and return read-only views by name.

    The inverse of :attr:`SharedArrayStore.refs` on the consuming side:
    every ref resolves through the per-process attach cache, so a store's
    segment is mapped once per process no matter how many arrays it packs or
    how often the caller re-attaches.  The grid-level dataset store
    (:mod:`repro.experiments.dispatch`) uses this to hand worker processes a
    whole published dataset at once.
    """
    return {name: resolve_shared_array(ref) for name, ref in refs.items()}


def _attach_shared_params(ref: SharedParamsRef) -> np.ndarray:
    """Attach (or reuse) a parameter segment and return a read-only vector."""
    return resolve_shared_array(
        SharedArrayRef(
            segment=ref.name, dtype=ref.dtype, shape=(ref.size,), persistent=False
        )
    )


# ----------------------------------------------------------------------
# Named fan-out registry
# ----------------------------------------------------------------------
_FANOUT_REGISTRY: Dict[str, Callable] = {}


def register_fanout_fn(name: str, fn: Callable) -> Callable:
    """Register a named, picklable work function for executor fan-out.

    Use ``"package.module:label"`` names so worker processes that have not
    imported the defining module yet can resolve the name by importing it
    (:func:`resolve_fanout_fn` does this automatically).  Re-registering the
    same function under the same name is a no-op (identity or qualified
    name — the same module imported under two paths registers equal
    functions); registering a genuinely *different* function under a taken
    name raises.
    """
    existing = _FANOUT_REGISTRY.get(name)
    if existing is not None and existing is not fn:
        if getattr(existing, "__qualname__", None) != getattr(fn, "__qualname__", ""):
            raise ValueError(f"fan-out name '{name}' is already registered")
        return existing
    _FANOUT_REGISTRY[name] = fn
    return fn


def resolve_fanout_fn(name: str) -> Callable:
    """Look up a registered fan-out function, importing its module on demand."""
    fn = _FANOUT_REGISTRY.get(name)
    if fn is None and ":" in name:
        try:
            importlib.import_module(name.split(":", 1)[0])
        except ImportError:
            pass  # fall through to the KeyError below
        fn = _FANOUT_REGISTRY.get(name)
    if fn is None:
        raise KeyError(f"no fan-out function registered under '{name}'")
    return fn


@dataclass(frozen=True)
class FanoutCall:
    """Picklable envelope shipping one registered-function call to a worker."""

    name: str
    payload: object


def run_fanout_call(call: FanoutCall):
    """Execute one envelope: resolve the name and apply it to the payload."""
    return resolve_fanout_fn(call.name)(call.payload)


def pooled_fanout_ready(executor, payload_by_ref: bool = True) -> bool:
    """Whether defense-side work should hand a batch to ``executor.map_fn``.

    ``payload_by_ref`` states whether the caller can ship its large shared
    payloads by shared-memory reference: backends whose fan-out *pickles*
    its work items (:attr:`ClientExecutor.fanout_requires_pickling`) are
    only worth using when that hand-off is possible — inlining a large
    array into every envelope re-ships it once per item, which a fused
    serial loop beats.
    """
    if executor is None or not getattr(executor, "supports_generic_fanout", False):
        return False
    if getattr(executor, "fanout_requires_pickling", False) and not payload_by_ref:
        return False
    return True


# ----------------------------------------------------------------------
# Fault directives (the worker-side half of the fault-injection plane)
# ----------------------------------------------------------------------
class InjectedWorkerCrash(RuntimeError):
    """A planned in-process worker crash (soft kill) fired inside a task."""


class ShmAttachFailure(RuntimeError):
    """A shared-memory segment could not be attached (real or injected).

    The recovery layer (:mod:`repro.fl.faults`) treats this — and genuine
    ``OSError`` attach failures on tasks that carry shm refs — as a signal to
    degrade the task to inline payloads and retry.
    """


@dataclass(frozen=True)
class FaultDirective:
    """Picklable instruction attached to one :class:`ClientTask` by a
    :class:`~repro.fl.faults.FaultInjector`.

    ``kind`` is one of ``"crash"`` (``hard`` kills the worker process with
    ``os._exit``, otherwise an :class:`InjectedWorkerCrash` is raised),
    ``"hang"`` (sleep ``seconds`` before training — a straggler, not an
    error) or ``"shm"`` (raise :class:`ShmAttachFailure` as if the segment
    attach failed).  Directives execute *before* the task touches its RNG,
    so a retried task is bit-identical to an uninjected one.
    """

    kind: str
    seconds: float = 0.0
    hard: bool = False


def _apply_fault_directive(directive: FaultDirective) -> None:
    if directive.kind == "hang":
        time.sleep(max(0.0, directive.seconds))
    elif directive.kind == "crash":
        if directive.hard:
            os._exit(17)
        raise InjectedWorkerCrash("injected worker crash")
    elif directive.kind == "shm":
        raise ShmAttachFailure("injected shared-memory attach failure")
    else:  # pragma: no cover - plans are validated at load time
        raise ValueError(f"unknown fault directive kind '{directive.kind}'")


# ----------------------------------------------------------------------
# Client tasks
# ----------------------------------------------------------------------
@dataclass
class ClientTask:
    """One benign client's local-training work for one round (picklable).

    Exactly one of ``global_params`` (inline vector, serial/thread backends)
    and ``params_ref`` (shared-memory handle, process backend) is set, and
    likewise exactly one of the inline ``images``/``labels`` arrays and
    ``shard_ref`` (the once-per-simulation shard store publication).
    """

    client_id: int
    round_number: int
    global_params: Optional[np.ndarray]
    images: Optional[np.ndarray]
    labels: Optional[np.ndarray]
    num_samples: int
    config: LocalTrainingConfig
    model_factory: Callable[[], object]
    rng_state: Dict
    """Serialized ``Generator.bit_generator.state`` of the owning client."""
    params_ref: Optional[SharedParamsRef] = None
    shard_ref: Optional[ShardRef] = None
    fault: Optional[FaultDirective] = None
    """Planned fault to execute before training (``None`` on the hot path)."""

    def resolve_global_params(self) -> np.ndarray:
        """The task's global parameter vector, attaching shared memory if used."""
        if self.global_params is not None:
            return self.global_params
        if self.params_ref is None:
            raise ValueError("task carries neither inline parameters nor a shm ref")
        return _attach_shared_params(self.params_ref)

    def resolve_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The task's ``(images, labels)`` shard, attaching shared memory if used."""
        if self.images is not None and self.labels is not None:
            return self.images, self.labels
        if self.shard_ref is None:
            raise ValueError("task carries neither inline arrays nor a shard ref")
        return self.shard_ref.resolve()


@dataclass
class ClientTaskResult:
    """Outcome of one :class:`ClientTask`: trained parameters + advanced RNG."""

    client_id: int
    parameters: np.ndarray
    num_samples: int
    rng_state: Dict


def run_client_task(task: ClientTask) -> ClientTaskResult:
    """Execute one client's local training; pure function of the task payload."""
    if task.fault is not None:
        _apply_fault_directive(task.fault)
    rng = np.random.default_rng()
    rng.bit_generator.state = task.rng_state
    model = task.model_factory()
    set_flat_params(model, task.resolve_global_params())
    images, labels = task.resolve_arrays()
    train_on_arrays(model, images, labels, task.config, rng)
    return ClientTaskResult(
        client_id=task.client_id,
        parameters=get_flat_params(model),
        num_samples=task.num_samples,
        rng_state=rng.bit_generator.state,
    )


def default_worker_count() -> int:
    """Worker count used when none is given: one per available core, max 8."""
    return max(1, min(8, os.cpu_count() or 1))


@dataclass
class TaskOutcome:
    """Per-task outcome of :meth:`ClientExecutor.map_detailed`.

    Exactly one of three states: ``result`` set (success), ``error`` set
    (the task raised or its worker died), or ``cut`` true (the task was
    still running when the deadline expired and was abandoned).
    """

    index: int
    result: Optional[ClientTaskResult] = None
    error: Optional[BaseException] = None
    cut: bool = False


class ClientExecutor:
    """Strategy interface: run a batch of client tasks, preserving order."""

    name = "base"
    supports_generic_fanout = False
    """Whether :meth:`map_fn` actually runs items concurrently.  Consumers
    with a cheaper serial fast path (REFD's fused scoring loop) only hand
    work to the executor when this is set."""
    supports_shard_store = False
    """Whether the backend benefits from the once-per-simulation shard store
    (only process pools do — threads already share the address space)."""
    fanout_requires_pickling = False
    """Whether :meth:`map_fn` serializes each work item to reach its workers.
    Consumers with large shared payloads (REFD's reference images) only fan
    out across such a backend when they can pass those payloads by
    shared-memory reference instead of inlining them into every item."""

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        """Run every task and return results in the same order as ``tasks``."""
        raise NotImplementedError

    def map_detailed(
        self, tasks: Sequence[ClientTask], deadline_at: Optional[float] = None
    ) -> List[TaskOutcome]:
        """Run tasks, capturing per-task success/error/cut instead of raising.

        ``deadline_at`` is an absolute :func:`time.monotonic` instant; tasks
        still unfinished when it passes are abandoned and marked ``cut``.
        The fault-tolerant round loop (:func:`repro.fl.faults.
        run_tasks_with_recovery`) drives this entry point; :meth:`map` stays
        the exception-propagating hot path.  The base implementation runs
        serially, checking the deadline between tasks.
        """
        outcomes: List[TaskOutcome] = []
        for index, task in enumerate(tasks):
            if deadline_at is not None and time.monotonic() >= deadline_at:
                outcomes.append(TaskOutcome(index=index, cut=True))
                continue
            try:
                outcomes.append(TaskOutcome(index=index, result=run_client_task(task)))
            except Exception as err:
                outcomes.append(TaskOutcome(index=index, error=err))
        return outcomes

    def map_fn(self, fn: Union[str, Callable], items: Iterable) -> List:
        """Generic order-preserving fan-out for non-task work.

        ``fn`` is either a callable or the *name* of a function registered
        with :func:`register_fanout_fn`.  Defense-side per-update work
        (REFD scoring) uses this to reuse the round's worker pool.  The base
        implementation runs serially; :class:`ThreadedExecutor` overlaps
        numpy-heavy callables on its thread pool; :class:`ParallelExecutor`
        ships *registered names* to its process pool (bare callables fall
        back to serial there, because closures do not pickle).
        """
        if isinstance(fn, str):
            fn = resolve_fanout_fn(fn)
        return [fn(item) for item in items]

    def publish_arrays(self, arrays: Mapping[str, np.ndarray]) -> Optional[SharedArrayStore]:
        """Publish arrays for by-reference fan-out payloads, when worthwhile.

        Returns a live :class:`SharedArrayStore` (caller owns it and must
        :meth:`~SharedArrayStore.close` it once the fan-out completes) or
        ``None`` on backends that share the parent's address space — there
        is nothing to ship, callers just put the array into the payload.
        The defense distance plane uses this to ship the round's stacked
        update matrix once instead of once per row block.
        """
        return None

    def counter_snapshot(self) -> Dict[str, int]:
        """This executor's observability counters (empty for stateless
        backends).  :meth:`DispatchPolicy.counter_snapshot
        <repro.fl.dispatch_policy.DispatchPolicy.counter_snapshot>` merges
        these into the per-policy view surfaced by ``--stats-json``."""
        return {}

    def close(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __enter__(self) -> "ClientExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ClientExecutor):
    """Run tasks one after another in the calling process (the default)."""

    name = "serial"

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        return [run_client_task(task) for task in tasks]


class ThreadedExecutor(ClientExecutor):
    """Thread-pool fan-out.

    numpy releases the GIL inside its kernels, so threads overlap the heavy
    matmul/conv work without any pickling cost.  This is the fallback for
    platforms where process pools are unavailable or fork is unsafe.
    """

    name = "thread"
    supports_generic_fanout = True

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers or default_worker_count()
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        return list(self._ensure_pool().map(run_client_task, tasks))

    def map_detailed(
        self, tasks: Sequence[ClientTask], deadline_at: Optional[float] = None
    ) -> List[TaskOutcome]:
        pool = self._ensure_pool()
        futures = [pool.submit(run_client_task, task) for task in tasks]
        timeout = None
        if deadline_at is not None:
            timeout = max(0.0, deadline_at - time.monotonic())
        _done, not_done = _futures_wait(set(futures), timeout=timeout)
        outcomes: List[TaskOutcome] = []
        for index, future in enumerate(futures):
            if future in not_done:
                # A running thread cannot be killed; cancel what we can and
                # abandon the rest (their results are discarded).
                future.cancel()
                outcomes.append(TaskOutcome(index=index, cut=True))
                continue
            try:
                outcomes.append(TaskOutcome(index=index, result=future.result()))
            except Exception as err:
                outcomes.append(TaskOutcome(index=index, error=err))
        return outcomes

    def map_fn(self, fn: Union[str, Callable], items: Iterable) -> List:
        if isinstance(fn, str):
            fn = resolve_fanout_fn(fn)
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ParallelExecutor(ClientExecutor):
    """Process-pool fan-out: true multi-core execution of the client round.

    Requires every task field to pickle (see the module docstring).  The pool
    is created lazily on first use and reused across rounds, so the process
    start-up cost is paid once per simulation rather than once per round.

    When ``use_shared_memory`` is enabled (the default):

    * a round whose tasks all broadcast the same global parameter vector
      (identity *or* value equality) publishes that vector once per round
      via :class:`SharedParamsLease` instead of pickling it into every task;
    * the simulation publishes every client's round-invariant data shard
      once per simulation in a :class:`SharedArrayStore` and tasks carry
      only a :class:`ShardRef` (see
      :attr:`~ClientExecutor.supports_shard_store`);
    * :meth:`map_fn` ships registered fan-out names to the same pool
      (:attr:`~ClientExecutor.supports_generic_fanout`), which is how REFD
      D-score inference runs across processes.

    Set it to ``False`` to force inline payloads (e.g. on platforms without
    POSIX shared memory).
    """

    name = "process"
    supports_generic_fanout = True
    fanout_requires_pickling = True

    def __init__(
        self, workers: Optional[int] = None, use_shared_memory: bool = True
    ) -> None:
        self.workers = workers or default_worker_count()
        self.use_shared_memory = use_shared_memory
        self.shm_rounds = 0
        """Number of rounds dispatched through the shared-memory params path."""
        self.shard_rounds = 0
        """Number of rounds whose tasks carried shard-store refs instead of
        inline image/label arrays."""
        self.fanout_calls = 0
        """Number of registered-name work items shipped through :meth:`map_fn`."""
        self.published_stores = 0
        """Number of per-call array publications served to defense-side
        fan-out through :meth:`publish_arrays` (e.g. distance-plane update
        matrices)."""
        self.pool_rebuilds = 0
        """Number of times a broken or deadline-cut pool was torn down and
        replaced mid-simulation."""
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def supports_shard_store(self) -> bool:
        return self.use_shared_memory

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self, terminate: bool = False) -> None:
        """Tear down the current pool so the next use builds a fresh one.

        ``terminate`` additionally kills the worker processes — needed when
        a deadline-cut straggler would otherwise hold a pool slot (and its
        CPU) indefinitely.  A pool that is merely *broken* has no live
        workers left to kill.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if terminate:
            for process in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already dead
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may refuse
            pass
        self.pool_rebuilds += 1

    def _broadcast_vector(self, tasks: Sequence[ClientTask]) -> Optional[np.ndarray]:
        """The round's common parameter vector, or ``None`` if not shareable.

        Tasks usually broadcast the *same object*, but equal-valued distinct
        vectors (e.g. defensive per-task copies) are recognised too — via
        :func:`np.shares_memory` first (cheap view check), then an exact
        ``array_equal`` fallback — so the shm path is not silently skipped.
        """
        if not self.use_shared_memory or len(tasks) < 2:
            return None
        first = tasks[0].global_params
        if first is None:
            return None
        for task in tasks[1:]:
            other = task.global_params
            if other is first:
                continue
            if other is None:
                return None
            if not (np.shares_memory(other, first) or np.array_equal(other, first)):
                return None
        return first

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        tasks = list(tasks)
        vector = self._broadcast_vector(tasks)
        lease: Optional[SharedParamsLease] = None
        if vector is not None:
            try:
                lease = SharedParamsLease(vector)
            except (ImportError, OSError):  # pragma: no cover - no POSIX shm
                lease = None
        if lease is not None:
            tasks = [
                dataclasses.replace(task, global_params=None, params_ref=lease.ref)
                for task in tasks
            ]
        try:
            try:
                results = list(self._ensure_pool().map(run_client_task, tasks))
            except BrokenProcessPool:
                # Workers can die *between* rounds of one simulation (OOM
                # kill, spot preemption); tasks are pure functions of their
                # payloads, so rebuilding the pool and re-running the whole
                # batch once is bit-identical.  A second break propagates.
                self._discard_pool()
                results = list(self._ensure_pool().map(run_client_task, tasks))
        finally:
            if lease is not None:
                lease.release()
        if lease is not None:
            self.shm_rounds += 1
        if any(task.shard_ref is not None for task in tasks):
            self.shard_rounds += 1
        return results

    def map_detailed(
        self, tasks: Sequence[ClientTask], deadline_at: Optional[float] = None
    ) -> List[TaskOutcome]:
        tasks = list(tasks)
        vector = self._broadcast_vector(tasks)
        lease: Optional[SharedParamsLease] = None
        if vector is not None:
            try:
                lease = SharedParamsLease(vector)
            except (ImportError, OSError):  # pragma: no cover - no POSIX shm
                lease = None
        run_tasks = tasks
        if lease is not None:
            run_tasks = [
                dataclasses.replace(task, global_params=None, params_ref=lease.ref)
                for task in tasks
            ]
        outcomes = [TaskOutcome(index=index) for index in range(len(tasks))]
        futures: Dict[object, int] = {}
        try:
            submit_error: Optional[BaseException] = None
            try:
                pool = self._ensure_pool()
                for index, task in enumerate(run_tasks):
                    futures[pool.submit(run_client_task, task)] = index
            except BrokenProcessPool as err:
                submit_error = err
            timeout = None
            if deadline_at is not None:
                timeout = max(0.0, deadline_at - time.monotonic())
            done, not_done = _futures_wait(set(futures), timeout=timeout)
            broken = submit_error is not None
            for future in done:
                index = futures[future]
                try:
                    outcomes[index].result = future.result()
                except Exception as err:
                    outcomes[index].error = err
                    if isinstance(err, BrokenProcessPool):
                        broken = True
            for future in not_done:
                future.cancel()
                outcomes[futures[future]].cut = True
            submitted = set(futures.values())
            for index in range(len(tasks)):
                if index not in submitted:
                    outcomes[index].error = submit_error or BrokenProcessPool(
                        "task was never submitted"
                    )
            if not_done:
                # Deadline-cut stragglers hold pool slots; kill the workers
                # so retries start on a clean pool.
                self._discard_pool(terminate=True)
            elif broken:
                self._discard_pool()
        finally:
            if lease is not None:
                lease.release()
        if lease is not None:
            self.shm_rounds += 1
        if any(task.shard_ref is not None for task in tasks):
            self.shard_rounds += 1
        return outcomes

    def map_fn(self, fn: Union[str, Callable], items: Iterable) -> List:
        items = list(items)
        if not isinstance(fn, str):
            # Bare callables (closures) do not pickle; run them serially
            # rather than failing.  Register a named function to fan out.
            return [fn(item) for item in items]
        resolve_fanout_fn(fn)  # fail fast in the parent on unknown names
        calls = [FanoutCall(name=fn, payload=item) for item in items]
        results = list(self._ensure_pool().map(run_fanout_call, calls))
        self.fanout_calls += len(calls)
        return results

    def publish_arrays(self, arrays: Mapping[str, np.ndarray]) -> Optional[SharedArrayStore]:
        if not self.use_shared_memory:
            return None
        try:
            store = SharedArrayStore(arrays, persistent=False)
        except (ImportError, OSError):  # pragma: no cover - no POSIX shm
            return None
        self.published_stores += 1
        return store

    def counter_snapshot(self) -> Dict[str, int]:
        return {
            "shm_rounds": self.shm_rounds,
            "shard_rounds": self.shard_rounds,
            "fanout_calls": self.fanout_calls,
            "published_stores": self.published_stores,
            "pool_rebuilds": self.pool_rebuilds,
        }

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_EXECUTOR_KINDS = {
    "serial": SerialExecutor,
    "thread": ThreadedExecutor,
    "process": ParallelExecutor,
}


def build_executor(
    spec: Union[None, str, ClientExecutor], workers: Optional[int] = None
) -> ClientExecutor:
    """Resolve an executor from a name (``serial``/``thread``/``process``),
    an existing instance (returned as-is), or ``None`` (serial).

    Low-level mechanism used by the dispatch layer; user-facing entry points
    take a :class:`~repro.fl.dispatch_policy.DispatchPolicy` instead, which
    decides *when* each backend is worth using.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, ClientExecutor):
        return spec
    key = str(spec).lower()
    if key not in _EXECUTOR_KINDS:
        raise KeyError(
            f"unknown executor '{spec}'; choose from {sorted(_EXECUTOR_KINDS)}"
        )
    if key == "serial":
        return SerialExecutor()
    return _EXECUTOR_KINDS[key](workers=workers)
