"""Pluggable execution backends for the per-round benign-client fan-out.

Each FL round trains ``clients_per_round`` independent local models; the
work units are embarrassingly parallel because every client starts from the
same broadcast global parameters and touches only its own data shard and RNG
stream.  :class:`ClientTask` captures one unit of that work as a fully
picklable payload (plain numpy arrays, a :class:`LocalTrainingConfig`, and
the client's RNG *state* rather than the generator object), so the same task
can be executed in-process, on a thread pool, or in a worker process — and
produce bit-identical results in all three cases.

Shared-memory broadcast
-----------------------
The global parameter vector is *identical* for every task of a round, so
pickling it into each task wastes ``clients_per_round × nbytes`` of
serialization per round.  :class:`ParallelExecutor` therefore publishes the
vector once per round in a :mod:`multiprocessing.shared_memory` segment and
rewrites the tasks to carry only a :class:`SharedParamsRef` (segment name,
dtype, length) next to their per-client data shards.  Workers attach the
segment read-only and copy the parameters straight into their model.  The
serial and thread backends keep inline arrays — they already share the
parent's address space, so there is nothing to ship.

Determinism contract
--------------------
A client owns one :class:`numpy.random.Generator` that advances across
rounds.  :func:`run_client_task` reconstructs the generator from the
serialized state, trains, and ships the *advanced* state back so the owning
:class:`~repro.fl.client.BenignClient` can resume exactly where a serial run
would have.  Given the same seed, :class:`SerialExecutor`,
:class:`ThreadedExecutor` and :class:`ParallelExecutor` therefore yield
bit-identical :class:`~repro.fl.types.ModelUpdate` sequences — the
shared-memory path ships the same bytes as the inline path.

Picklability
------------
:class:`ParallelExecutor` submits tasks to a
:class:`concurrent.futures.ProcessPoolExecutor`, so every field of the task
must pickle — in particular ``model_factory``.  Closures do not pickle; use
:class:`repro.models.ClassifierFactory` (or any module-level callable /
dataclass) when running with processes.  The experiment layer
(:func:`repro.experiments.runner.build_simulation`) already does.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..nn.serialization import get_flat_params, set_flat_params
from .training import train_on_arrays
from .types import LocalTrainingConfig

__all__ = [
    "ClientTask",
    "ClientTaskResult",
    "SharedParamsRef",
    "SharedParamsLease",
    "run_client_task",
    "ClientExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ParallelExecutor",
    "build_executor",
    "default_worker_count",
]


# ----------------------------------------------------------------------
# Shared-memory parameter broadcast
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedParamsRef:
    """Handle to a parameter vector published in shared memory (picklable)."""

    name: str
    dtype: str
    size: int


class SharedParamsLease:
    """Parent-side owner of one round's shared-memory parameter segment.

    Create it with the round's global parameter vector, hand
    :attr:`ref` to the tasks, and :meth:`release` after the round's results
    are in (workers only read the segment while executing their task).
    """

    def __init__(self, vector: np.ndarray) -> None:
        from multiprocessing import shared_memory

        vector = np.ascontiguousarray(vector)
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, vector.nbytes))
        view = np.ndarray(vector.shape, dtype=vector.dtype, buffer=self._shm.buf)
        view[:] = vector
        self.ref = SharedParamsRef(
            name=self._shm.name, dtype=vector.dtype.str, size=vector.size
        )

    def release(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


#: Worker-process cache of the currently attached segment.  A worker handles
#: several tasks per round; all of them reference the same segment, so one
#: attach per (worker, round) suffices.  Stale segments are detached when a
#: new round publishes under a different name.
_ATTACHED_SEGMENTS: Dict[str, Tuple[object, np.ndarray]] = {}


def _attach_shared_params(ref: SharedParamsRef) -> np.ndarray:
    """Attach (or reuse) the shared segment and return a read-only view."""
    cached = _ATTACHED_SEGMENTS.get(ref.name)
    if cached is not None:
        return cached[1]
    from multiprocessing import shared_memory

    # The parent owns the segment's lifetime, so the attaching side must not
    # register it with the resource tracker (a second registration makes the
    # tracker double-unlink at shutdown).  CPython 3.13+ supports this
    # directly via ``track=False``; older versions need the registration
    # call suppressed for the duration of this one attach.
    try:
        shm = shared_memory.SharedMemory(name=ref.name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=ref.name)
        finally:
            resource_tracker.register = original_register
    view = np.ndarray((ref.size,), dtype=np.dtype(ref.dtype), buffer=shm.buf)
    view.flags.writeable = False
    for name in list(_ATTACHED_SEGMENTS):
        old_shm, _ = _ATTACHED_SEGMENTS.pop(name)
        old_shm.close()
    _ATTACHED_SEGMENTS[ref.name] = (shm, view)
    return view


@dataclass
class ClientTask:
    """One benign client's local-training work for one round (picklable).

    Exactly one of ``global_params`` (inline vector, serial/thread backends)
    and ``params_ref`` (shared-memory handle, process backend) is set.
    """

    client_id: int
    round_number: int
    global_params: Optional[np.ndarray]
    images: np.ndarray
    labels: np.ndarray
    num_samples: int
    config: LocalTrainingConfig
    model_factory: Callable[[], object]
    rng_state: Dict
    """Serialized ``Generator.bit_generator.state`` of the owning client."""
    params_ref: Optional[SharedParamsRef] = None

    def resolve_global_params(self) -> np.ndarray:
        """The task's global parameter vector, attaching shared memory if used."""
        if self.global_params is not None:
            return self.global_params
        if self.params_ref is None:
            raise ValueError("task carries neither inline parameters nor a shm ref")
        return _attach_shared_params(self.params_ref)


@dataclass
class ClientTaskResult:
    """Outcome of one :class:`ClientTask`: trained parameters + advanced RNG."""

    client_id: int
    parameters: np.ndarray
    num_samples: int
    rng_state: Dict


def run_client_task(task: ClientTask) -> ClientTaskResult:
    """Execute one client's local training; pure function of the task payload."""
    rng = np.random.default_rng()
    rng.bit_generator.state = task.rng_state
    model = task.model_factory()
    set_flat_params(model, task.resolve_global_params())
    train_on_arrays(model, task.images, task.labels, task.config, rng)
    return ClientTaskResult(
        client_id=task.client_id,
        parameters=get_flat_params(model),
        num_samples=task.num_samples,
        rng_state=rng.bit_generator.state,
    )


def default_worker_count() -> int:
    """Worker count used when none is given: one per available core, max 8."""
    return max(1, min(8, os.cpu_count() or 1))


class ClientExecutor:
    """Strategy interface: run a batch of client tasks, preserving order."""

    name = "base"
    supports_generic_fanout = False
    """Whether :meth:`map_fn` actually runs items concurrently.  Consumers
    with a cheaper serial fast path (REFD's fused scoring loop) only hand
    work to the executor when this is set."""

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        """Run every task and return results in the same order as ``tasks``."""
        raise NotImplementedError

    def map_fn(self, fn: Callable, items: Iterable) -> List:
        """Generic order-preserving fan-out for non-task work.

        Defense-side per-update work (e.g. REFD scoring) uses this to reuse
        the round's worker pool.  The base implementation runs serially;
        :class:`ThreadedExecutor` overlaps numpy-heavy callables on its
        thread pool.  The process backend inherits the serial behaviour,
        because arbitrary closures do not pickle.
        """
        return [fn(item) for item in items]

    def close(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __enter__(self) -> "ClientExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ClientExecutor):
    """Run tasks one after another in the calling process (the default)."""

    name = "serial"

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        return [run_client_task(task) for task in tasks]


class ThreadedExecutor(ClientExecutor):
    """Thread-pool fan-out.

    numpy releases the GIL inside its kernels, so threads overlap the heavy
    matmul/conv work without any pickling cost.  This is the fallback for
    platforms where process pools are unavailable or fork is unsafe.
    """

    name = "thread"
    supports_generic_fanout = True

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers or default_worker_count()
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        return list(self._ensure_pool().map(run_client_task, tasks))

    def map_fn(self, fn: Callable, items: Iterable) -> List:
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ParallelExecutor(ClientExecutor):
    """Process-pool fan-out: true multi-core execution of the client round.

    Requires every task field to pickle (see the module docstring).  The pool
    is created lazily on first use and reused across rounds, so the process
    start-up cost is paid once per simulation rather than once per round.

    When ``use_shared_memory`` is enabled (the default) and a round's tasks
    all broadcast the same global parameter vector, that vector is published
    once per round via :class:`SharedParamsLease` instead of being pickled
    into every task; tasks then carry only the segment name plus their own
    data shards.  Set it to ``False`` to force inline parameters (e.g. on
    platforms without POSIX shared memory).
    """

    name = "process"

    def __init__(
        self, workers: Optional[int] = None, use_shared_memory: bool = True
    ) -> None:
        self.workers = workers or default_worker_count()
        self.use_shared_memory = use_shared_memory
        self.shm_rounds = 0
        """Number of rounds dispatched through the shared-memory path."""
        self._pool: Optional[ProcessPoolExecutor] = None

    def _broadcast_vector(self, tasks: Sequence[ClientTask]) -> Optional[np.ndarray]:
        """The round's common parameter vector, or ``None`` if not shareable."""
        if not self.use_shared_memory or len(tasks) < 2:
            return None
        first = tasks[0].global_params
        if first is None:
            return None
        if all(task.global_params is first for task in tasks[1:]):
            return first
        return None

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        tasks = list(tasks)
        vector = self._broadcast_vector(tasks)
        lease: Optional[SharedParamsLease] = None
        if vector is not None:
            try:
                lease = SharedParamsLease(vector)
            except (ImportError, OSError):  # pragma: no cover - no POSIX shm
                lease = None
        if lease is not None:
            tasks = [
                dataclasses.replace(task, global_params=None, params_ref=lease.ref)
                for task in tasks
            ]
        try:
            results = list(self._pool.map(run_client_task, tasks))
        finally:
            if lease is not None:
                lease.release()
        if lease is not None:
            self.shm_rounds += 1
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_EXECUTOR_KINDS = {
    "serial": SerialExecutor,
    "thread": ThreadedExecutor,
    "process": ParallelExecutor,
}


def build_executor(
    spec: Union[None, str, ClientExecutor], workers: Optional[int] = None
) -> ClientExecutor:
    """Resolve an executor from a name (``serial``/``thread``/``process``),
    an existing instance (returned as-is), or ``None`` (serial)."""
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, ClientExecutor):
        return spec
    key = str(spec).lower()
    if key not in _EXECUTOR_KINDS:
        raise KeyError(
            f"unknown executor '{spec}'; choose from {sorted(_EXECUTOR_KINDS)}"
        )
    if key == "serial":
        return SerialExecutor()
    return _EXECUTOR_KINDS[key](workers=workers)
