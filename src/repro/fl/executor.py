"""Pluggable execution backends for the per-round benign-client fan-out.

Each FL round trains ``clients_per_round`` independent local models; the
work units are embarrassingly parallel because every client starts from the
same broadcast global parameters and touches only its own data shard and RNG
stream.  :class:`ClientTask` captures one unit of that work as a fully
picklable payload (plain numpy arrays, a :class:`LocalTrainingConfig`, and
the client's RNG *state* rather than the generator object), so the same task
can be executed in-process, on a thread pool, or in a worker process — and
produce bit-identical results in all three cases.

Determinism contract
--------------------
A client owns one :class:`numpy.random.Generator` that advances across
rounds.  :func:`run_client_task` reconstructs the generator from the
serialized state, trains, and ships the *advanced* state back so the owning
:class:`~repro.fl.client.BenignClient` can resume exactly where a serial run
would have.  Given the same seed, :class:`SerialExecutor`,
:class:`ThreadedExecutor` and :class:`ParallelExecutor` therefore yield
bit-identical :class:`~repro.fl.types.ModelUpdate` sequences.

Picklability
------------
:class:`ParallelExecutor` submits tasks to a
:class:`concurrent.futures.ProcessPoolExecutor`, so every field of the task
must pickle — in particular ``model_factory``.  Closures do not pickle; use
:class:`repro.models.ClassifierFactory` (or any module-level callable /
dataclass) when running with processes.  The experiment layer
(:func:`repro.experiments.runner.build_simulation`) already does.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..nn.serialization import get_flat_params, set_flat_params
from .training import train_on_arrays
from .types import LocalTrainingConfig

__all__ = [
    "ClientTask",
    "ClientTaskResult",
    "run_client_task",
    "ClientExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ParallelExecutor",
    "build_executor",
    "default_worker_count",
]


@dataclass
class ClientTask:
    """One benign client's local-training work for one round (picklable)."""

    client_id: int
    round_number: int
    global_params: np.ndarray
    images: np.ndarray
    labels: np.ndarray
    num_samples: int
    config: LocalTrainingConfig
    model_factory: Callable[[], object]
    rng_state: Dict
    """Serialized ``Generator.bit_generator.state`` of the owning client."""


@dataclass
class ClientTaskResult:
    """Outcome of one :class:`ClientTask`: trained parameters + advanced RNG."""

    client_id: int
    parameters: np.ndarray
    num_samples: int
    rng_state: Dict


def run_client_task(task: ClientTask) -> ClientTaskResult:
    """Execute one client's local training; pure function of the task payload."""
    rng = np.random.default_rng()
    rng.bit_generator.state = task.rng_state
    model = task.model_factory()
    set_flat_params(model, task.global_params)
    train_on_arrays(model, task.images, task.labels, task.config, rng)
    return ClientTaskResult(
        client_id=task.client_id,
        parameters=get_flat_params(model),
        num_samples=task.num_samples,
        rng_state=rng.bit_generator.state,
    )


def default_worker_count() -> int:
    """Worker count used when none is given: one per available core, max 8."""
    return max(1, min(8, os.cpu_count() or 1))


class ClientExecutor:
    """Strategy interface: run a batch of client tasks, preserving order."""

    name = "base"

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        """Run every task and return results in the same order as ``tasks``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __enter__(self) -> "ClientExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ClientExecutor):
    """Run tasks one after another in the calling process (the default)."""

    name = "serial"

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        return [run_client_task(task) for task in tasks]


class ThreadedExecutor(ClientExecutor):
    """Thread-pool fan-out.

    numpy releases the GIL inside its kernels, so threads overlap the heavy
    matmul/conv work without any pickling cost.  This is the fallback for
    platforms where process pools are unavailable or fork is unsafe.
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers or default_worker_count()
        self._pool: Optional[ThreadPoolExecutor] = None

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return list(self._pool.map(run_client_task, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ParallelExecutor(ClientExecutor):
    """Process-pool fan-out: true multi-core execution of the client round.

    Requires every task field to pickle (see the module docstring).  The pool
    is created lazily on first use and reused across rounds, so the process
    start-up cost is paid once per simulation rather than once per round.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers or default_worker_count()
        self._pool: Optional[ProcessPoolExecutor] = None

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientTaskResult]:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return list(self._pool.map(run_client_task, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_EXECUTOR_KINDS = {
    "serial": SerialExecutor,
    "thread": ThreadedExecutor,
    "process": ParallelExecutor,
}


def build_executor(
    spec: Union[None, str, ClientExecutor], workers: Optional[int] = None
) -> ClientExecutor:
    """Resolve an executor from a name (``serial``/``thread``/``process``),
    an existing instance (returned as-is), or ``None`` (serial)."""
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, ClientExecutor):
        return spec
    key = str(spec).lower()
    if key not in _EXECUTOR_KINDS:
        raise KeyError(
            f"unknown executor '{spec}'; choose from {sorted(_EXECUTOR_KINDS)}"
        )
    if key == "serial":
        return SerialExecutor()
    return _EXECUTOR_KINDS[key](workers=workers)
