"""Federated learning core: clients, server, aggregation and simulation."""

from .aggregation import fedavg, stack_updates, unweighted_average
from .client import BenignClient
from .dispatch_policy import (
    BenchRecord,
    CostModel,
    DispatchDecision,
    DispatchPolicy,
    DistanceCache,
    dispatch_for,
)
from .executor import (
    ClientExecutor,
    ClientTask,
    ClientTaskResult,
    ParallelExecutor,
    SerialExecutor,
    ThreadedExecutor,
    build_executor,
    run_client_task,
)
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultStats,
    ResilienceConfig,
    RoundExecutionError,
)
from .selection import ClientSelector, RoundRobinSelector, UniformSelector
from .server import Server
from .simulation import FederatedSimulation, SimulationResult
from .training import evaluate_model, predict_proba, train_local_model, train_on_arrays
from .types import (
    AggregationResult,
    AttackRoundContext,
    DefenseContext,
    LocalTrainingConfig,
    ModelUpdate,
    RoundRecord,
)

__all__ = [
    "fedavg",
    "unweighted_average",
    "stack_updates",
    "BenignClient",
    "BenchRecord",
    "CostModel",
    "DispatchDecision",
    "DispatchPolicy",
    "DistanceCache",
    "dispatch_for",
    "ClientExecutor",
    "ClientTask",
    "ClientTaskResult",
    "SerialExecutor",
    "ThreadedExecutor",
    "ParallelExecutor",
    "build_executor",
    "run_client_task",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "ResilienceConfig",
    "RoundExecutionError",
    "ClientSelector",
    "UniformSelector",
    "RoundRobinSelector",
    "Server",
    "FederatedSimulation",
    "SimulationResult",
    "train_local_model",
    "train_on_arrays",
    "evaluate_model",
    "predict_proba",
    "ModelUpdate",
    "AttackRoundContext",
    "DefenseContext",
    "AggregationResult",
    "RoundRecord",
    "LocalTrainingConfig",
]
