"""The central FL server: holds the global model and applies the defense."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..defenses.base import Defense, NoDefense
from ..nn.modules import Module
from ..nn.serialization import FlatParams, set_flat_params
from .training import evaluate_model
from .types import AggregationResult, DefenseContext, ModelUpdate

__all__ = ["Server"]


class Server:
    """Central aggregator of the federated system.

    The server owns the global model, distributes its parameters each round,
    applies the configured defense to the received updates and keeps the two
    most recent global parameter vectors (the attack's regularizer and some
    defenses reason about ``w(t)`` and ``w(t-1)``).

    The global parameters live in a single contiguous
    :class:`~repro.nn.serialization.FlatParams` buffer in the model's native
    dtype (float32), so distribution, aggregation and defense matrices never
    pay a float64 up-cast.
    """

    def __init__(
        self,
        model_factory: Callable[[], Module],
        defense: Optional[Defense] = None,
        expected_num_malicious: int = 2,
        reference_dataset=None,
        seed: int = 0,
        executor=None,
        reference_ref=None,
        dispatch=None,
    ) -> None:
        self.model_factory = model_factory
        self.defense = defense or NoDefense()
        self.expected_num_malicious = expected_num_malicious
        self.reference_dataset = reference_dataset
        self.executor = executor
        self.reference_ref = reference_ref
        self.dispatch = dispatch
        self._rng = np.random.default_rng(seed)
        self.global_model = model_factory()
        self.flat_params = FlatParams.from_module(self.global_model)
        self.param_dtype = self.flat_params.dtype
        self.previous_global_params: Optional[np.ndarray] = None
        self.round_number = 0

    @property
    def global_params(self) -> np.ndarray:
        """The current global parameter vector (the FlatParams buffer)."""
        return self.flat_params.vector

    # ------------------------------------------------------------------
    def distribute(self) -> np.ndarray:
        """Parameters sent to clients at the start of a round."""
        return self.global_params.copy()

    def aggregate(self, updates: Sequence[ModelUpdate]) -> AggregationResult:
        """Apply the defense to the received updates and install the result."""
        if not updates:
            raise ValueError("server received no updates this round")
        context = DefenseContext(
            round_number=self.round_number,
            global_params=self.global_params,
            expected_num_malicious=self.expected_num_malicious,
            rng=self._rng,
            model_factory=self.model_factory,
            reference_dataset=self.reference_dataset,
            executor=self.executor,
            reference_ref=self.reference_ref,
            dispatch=self.dispatch,
        )
        result = self.defense.aggregate(list(updates), context)
        self.previous_global_params = self.global_params
        new_params = np.asarray(result.new_params, dtype=self.param_dtype).ravel()
        self.flat_params = self.flat_params.with_vector(new_params)
        set_flat_params(self.global_model, new_params)
        self.round_number += 1
        return result

    def evaluate(self, dataset, batch_size: int = 128) -> Tuple[float, float]:
        """Accuracy and loss of the current global model on ``dataset``."""
        return evaluate_model(self.global_model, dataset, batch_size=batch_size)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe server state for round-granular checkpoints.

        Parameter vectors are stored as plain float lists: Python floats are
        exact binary64, so float32 values survive the float→JSON→float round
        trip bit-identically.
        """
        return {
            "round_number": int(self.round_number),
            "rng_state": self._rng.bit_generator.state,
            "param_dtype": np.dtype(self.param_dtype).str,
            "global_params": self.global_params.tolist(),
            "previous_global_params": (
                None
                if self.previous_global_params is None
                else self.previous_global_params.tolist()
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the state written by :meth:`state_dict`."""
        dtype = np.dtype(state["param_dtype"])
        vector = np.asarray(state["global_params"], dtype=dtype).ravel()
        if vector.size != self.global_params.size:
            raise ValueError(
                "checkpoint parameter vector does not match the model "
                f"({vector.size} vs {self.global_params.size})"
            )
        self.flat_params = self.flat_params.with_vector(vector)
        set_flat_params(self.global_model, vector)
        previous = state.get("previous_global_params")
        self.previous_global_params = (
            None if previous is None else np.asarray(previous, dtype=dtype).ravel()
        )
        self._rng = np.random.default_rng()
        self._rng.bit_generator.state = state["rng_state"]
        self.round_number = int(state["round_number"])
