"""Shared datatypes of the federated-learning simulation.

These dataclasses form the contract between the simulation loop
(:mod:`repro.fl.simulation`), the attacks (:mod:`repro.attacks`) and the
defenses (:mod:`repro.defenses`):

* clients produce :class:`ModelUpdate` objects (full local model parameter
  vectors plus metadata);
* attacks receive an :class:`AttackRoundContext` describing exactly what the
  threat model allows them to know;
* defenses receive a :class:`DefenseContext` and return an
  :class:`AggregationResult`;
* the simulation records one :class:`RoundRecord` per round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "ModelUpdate",
    "AttackRoundContext",
    "DefenseContext",
    "AggregationResult",
    "RoundRecord",
    "LocalTrainingConfig",
]


@dataclass
class LocalTrainingConfig:
    """Hyper-parameters of client-side local training.

    ``trace`` selects the autograd execution mode: ``"replay"`` records
    each ``(model, input-shape, dtype)`` signature once and replays the
    buffer-planned tape (bit-identical to eager; falls back per signature
    when a model is untraceable), ``"eager"`` forces the per-op closure
    engine, and ``"auto"`` lets :class:`DispatchPolicy`'s ``train`` site
    decide from the benchmark ledger.
    """

    local_epochs: int = 1
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    trace: str = "auto"

    def __post_init__(self) -> None:
        if self.local_epochs < 1:
            raise ValueError("local_epochs must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.trace not in ("auto", "replay", "eager"):
            raise ValueError("trace must be one of 'auto', 'replay', 'eager'")


@dataclass
class ModelUpdate:
    """A local model submitted by one client for one round.

    ``parameters`` is the flat vector of the *entire* local model after local
    training (not a delta), matching the FedAvg formulation in Eq. (2) of the
    paper.
    """

    client_id: int
    parameters: np.ndarray
    num_samples: int
    is_malicious: bool = False

    def __post_init__(self) -> None:
        # Keep the native floating dtype: the whole pipeline ships float32
        # flat buffers, and silently up-casting every update to float64 would
        # double the bytes of every task, cache entry and defense matrix.
        parameters = np.asarray(self.parameters)
        if not np.issubdtype(parameters.dtype, np.floating):
            parameters = parameters.astype(np.float64)
        self.parameters = parameters.ravel()
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")


@dataclass
class AttackRoundContext:
    """Everything an attack may use when crafting malicious updates.

    The fields encode the knowledge assumptions of Table I in the paper:
    data-free attacks (DFA) only use ``global_params``,
    ``previous_global_params`` and task metadata, whereas the baselines may
    additionally read ``benign_updates`` (LIE, Fang, Min-Max) or
    ``attacker_datasets`` (the real-data comparator of Fig. 8).
    """

    round_number: int
    global_params: np.ndarray
    previous_global_params: Optional[np.ndarray]
    model_factory: Callable[[], "object"]
    num_classes: int
    image_shape: tuple
    selected_malicious_ids: Sequence[int]
    training_config: LocalTrainingConfig
    benign_num_samples: int
    rng: np.random.Generator
    benign_updates: Optional[List[ModelUpdate]] = None
    attacker_datasets: Optional[Dict[int, "object"]] = None


@dataclass
class DefenseContext:
    """Server-side information available to a defense when aggregating.

    ``executor`` is the round's client executor (when the simulation runs
    one); defenses with per-update or per-row-block work may fan out across
    it via :meth:`~repro.fl.executor.ClientExecutor.map_fn`, passing a name
    registered with :func:`~repro.fl.executor.register_fanout_fn` so the
    process backend can ship the work to its pool.  REFD's D-score
    inference and the Krum/Bulyan/FoolsGold distance plane
    (:mod:`repro.defenses.distances`) both ride this path; the distance
    plane additionally publishes the round's stacked update matrix once via
    :meth:`~repro.fl.executor.ClientExecutor.publish_arrays` so process
    workers read it from shared memory instead of per-block pickles.

    ``reference_ref`` is the shared-memory publication of the reference
    dataset's ``(images, labels)`` arrays (a
    :class:`~repro.fl.executor.ShardRef`), available when the simulation
    runs a process executor with its shard store enabled: fan-out payloads
    then reference the segment instead of pickling the images per update.

    ``dispatch`` is the simulation's
    :class:`~repro.fl.dispatch_policy.DispatchPolicy`.  Defenses should not
    probe ``executor`` capabilities themselves — they hand per-update or
    per-row-block work to
    :meth:`~repro.fl.dispatch_policy.DispatchPolicy.fanout` (usually via
    :func:`~repro.fl.dispatch_policy.dispatch_for`, which also adapts
    legacy contexts that only carry ``executor``) and let the policy pick
    the backend from its benchmark-calibrated cost model.
    """

    round_number: int
    global_params: np.ndarray
    expected_num_malicious: int
    rng: np.random.Generator
    model_factory: Optional[Callable[[], "object"]] = None
    reference_dataset: Optional["object"] = None
    executor: Optional["object"] = None
    reference_ref: Optional["object"] = None
    dispatch: Optional["object"] = None


@dataclass
class AggregationResult:
    """Output of a defense: the new global parameters and which updates it used.

    ``accepted_client_ids`` is ``None`` for purely statistical defenses
    (Median, Trimmed mean) that do not select whole updates — the paper's
    DPR metric is undefined for those.
    """

    new_params: np.ndarray
    accepted_client_ids: Optional[List[int]] = None
    scores: Optional[Dict[int, float]] = None


@dataclass
class RoundRecord:
    """Per-round bookkeeping used to compute the paper's metrics."""

    round_number: int
    selected_client_ids: List[int]
    selected_malicious_ids: List[int]
    accepted_client_ids: Optional[List[int]]
    accuracy: float
    test_loss: float
    num_malicious_passed: Optional[int] = None
    attack_metadata: Dict[str, float] = field(default_factory=dict)
    cut_client_ids: List[int] = field(default_factory=list)
    """Benign clients whose tasks were cut at the round deadline and dropped
    from aggregation after the retry budget (empty on fault-free rounds).
    Recorded so quorum aggregation stays explicit and reproducible."""

    @property
    def num_malicious_selected(self) -> int:
        """Number of attacker-controlled clients sampled in this round."""
        return len(self.selected_malicious_ids)

    def to_dict(self) -> Dict:
        """JSON-ready payload (cache artifacts, checkpoints, ``--output``)."""
        return {
            "round_number": self.round_number,
            "selected_client_ids": list(self.selected_client_ids),
            "selected_malicious_ids": list(self.selected_malicious_ids),
            "accepted_client_ids": (
                None
                if self.accepted_client_ids is None
                else list(self.accepted_client_ids)
            ),
            "accuracy": self.accuracy,
            "test_loss": self.test_loss,
            "num_malicious_passed": self.num_malicious_passed,
            "attack_metadata": dict(self.attack_metadata),
            "cut_client_ids": list(self.cut_client_ids),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RoundRecord":
        accepted = payload["accepted_client_ids"]
        return cls(
            round_number=int(payload["round_number"]),
            selected_client_ids=list(payload["selected_client_ids"]),
            selected_malicious_ids=list(payload["selected_malicious_ids"]),
            accepted_client_ids=None if accepted is None else list(accepted),
            accuracy=float(payload["accuracy"]),
            test_loss=float(payload["test_loss"]),
            num_malicious_passed=payload.get("num_malicious_passed"),
            attack_metadata=dict(payload.get("attack_metadata", {})),
            cut_client_ids=list(payload.get("cut_client_ids", [])),
        )
