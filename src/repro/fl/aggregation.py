"""Plain (attack-oblivious) aggregation rules.

Robust aggregation rules live in :mod:`repro.defenses`; this module only
contains the weighted FedAvg of Eq. (2), which both the undefended baseline
and several defenses reuse after selecting a subset of updates.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .types import ModelUpdate

__all__ = ["fedavg", "unweighted_average", "stack_updates"]


def stack_updates(updates: Sequence[ModelUpdate]) -> np.ndarray:
    """Stack update parameter vectors into a ``(num_updates, dim)`` matrix."""
    if not updates:
        raise ValueError("cannot stack an empty list of updates")
    dim = updates[0].parameters.size
    for update in updates:
        if update.parameters.size != dim:
            raise ValueError("all updates must have the same number of parameters")
    return np.stack([update.parameters for update in updates], axis=0)


def fedavg(updates: Sequence[ModelUpdate]) -> np.ndarray:
    """Sample-count weighted average of local models (Eq. 2 of the paper).

    The weight normalisation runs in float64, but the reduction itself is a
    single GEMV in the matrix dtype, so float32 update matrices stay
    float32 end to end.
    """
    matrix = stack_updates(updates)
    weights = np.array([update.num_samples for update in updates], dtype=np.float64)
    weights = weights / weights.sum()
    return np.matmul(weights.astype(matrix.dtype, copy=False), matrix)


def unweighted_average(updates: Sequence[ModelUpdate]) -> np.ndarray:
    """Simple mean of local models (used after Krum-style selection)."""
    return stack_updates(updates).mean(axis=0)
