"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools/pip combination cannot build
PEP 660 editable wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()
